// Deterministic fault injection for the runtime's probe and sampling paths.
//
// The paper's environment model assumes autonomous, opaque local sites: the
// MDBS observes a site only through probing and sample queries, and a loaded
// or dead site can fail those arbitrarily — throw, hang, stall, or return
// garbage. The chaos tests drive exactly those failures through this
// injector: a seeded Rng (plus an optional scripted queue) decides per call
// whether to throw, corrupt the returned cost (NaN / +inf / negative),
// sleep past the probe deadline, or hang until released.
//
// Determinism: all randomness comes from the seeded xoshiro generator, so a
// failing chaos run reproduces from its seed. Hangs block on a condition
// variable until ReleaseHangs() (also called by the destructor), so no
// injected hang can outlive a test or leak a blocked thread at exit.
//
// Lifetime: callables returned by WrapProbe share ownership of the
// injector's state, so a probe thread the tracker abandoned past its
// deadline stays safe to run even after the injector object is gone.

#ifndef MSCM_SIM_FAULT_INJECTOR_H_
#define MSCM_SIM_FAULT_INJECTOR_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/observation_source.h"

namespace mscm::sim {

enum class FaultKind {
  kNone = 0,   // call passes through unfaulted
  kThrow,      // throws std::runtime_error
  kNaN,        // returns / corrupts to quiet NaN
  kInf,        // returns / corrupts to +inf
  kNegative,   // returns / corrupts to -1.0
  kHang,       // blocks until ReleaseHangs()
  kDelay,      // sleeps the configured delay (real time), then passes through
};
inline constexpr int kNumFaultKinds = 7;

const char* ToString(FaultKind k);

struct FaultInjectorConfig {
  uint64_t seed = 0x5eedf00dULL;
  // Per-call injection probabilities, drawn once per call from one uniform
  // variate (mutually exclusive; the sum must not exceed 1; the remainder is
  // the unfaulted pass-through probability).
  double throw_rate = 0.0;
  double nan_rate = 0.0;
  double inf_rate = 0.0;
  double negative_rate = 0.0;
  double hang_rate = 0.0;
  double delay_rate = 0.0;
  // How long a kDelay fault sleeps — wall time, so set it past the probe
  // deadline under test.
  std::chrono::nanoseconds delay = std::chrono::milliseconds(10);
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorConfig config = {});
  ~FaultInjector();  // ReleaseHangs(): no injected hang survives the injector

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Wraps a probe callable with fault injection (ContentionTracker::ProbeFn
  // shape). The wrapper owns a share of the injector state — safe to invoke
  // from probe threads that outlive this object.
  std::function<double()> WrapProbe(std::function<double()> inner);

  // Forces the next `count` calls to inject `kind`; scripted faults take
  // priority over the seeded rates (deterministic single-fault tests).
  void ScheduleNext(FaultKind kind, int count = 1);

  // Draws and counts the fault for one call: scripted queue first, then the
  // seeded rates. Exposed so wrappers over other interfaces
  // (FaultyObservationSource) share the same fault stream.
  FaultKind NextFault();

  // The kHang behavior: blocks the calling thread until ReleaseHangs().
  void HangUntilReleased();

  // The kDelay behavior: sleeps the configured delay (wall time).
  void SleepDelay();

  // Permanently releases every current and future hang (teardown; hangs
  // injected afterwards return immediately).
  void ReleaseHangs();

  // Calls currently blocked inside an injected hang.
  int hanging() const;

  // Total calls routed through the injector.
  uint64_t calls() const;

  // Calls that drew `kind` (injected(kNone) counts the pass-throughs).
  uint64_t injected(FaultKind kind) const;

 private:
  struct State;

  static FaultKind NextFaultImpl(State& state);
  static void HangImpl(State& state);
  static double InvokeFaulted(const std::shared_ptr<State>& state,
                              const std::function<double()>& inner);

  std::shared_ptr<State> state_;
};

// ObservationSource wrapper injecting faults into the sampling path the
// refresh daemon draws through. TryDraw is the faulted entry point: it can
// throw, corrupt the drawn observation's cost, hang until release (then
// report "no sample"), or delay. Draw() and DrawInProbingRange() forward
// unfaulted — derivation-internal resampling is not the surface under test.
// Neither pointer is owned; both must outlive this source.
class FaultyObservationSource : public core::ObservationSource {
 public:
  FaultyObservationSource(core::ObservationSource* inner,
                          FaultInjector* injector)
      : inner_(inner), injector_(injector) {}

  core::Observation Draw() override { return inner_->Draw(); }

  std::optional<core::Observation> TryDraw() override;

  std::optional<core::Observation> DrawInProbingRange(
      double lo, double hi, int max_attempts) override {
    return inner_->DrawInProbingRange(lo, hi, max_attempts);
  }

 private:
  core::ObservationSource* const inner_;
  FaultInjector* const injector_;
};

}  // namespace mscm::sim

#endif  // MSCM_SIM_FAULT_INJECTOR_H_
