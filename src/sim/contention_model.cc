#include "sim/contention_model.h"

#include <algorithm>
#include <cmath>

namespace mscm::sim {

SlowdownFactors ComputeSlowdown(const MachineLoad& load,
                                const PerformanceProfile& profile,
                                const MachineSpec& machine) {
  SlowdownFactors f;

  // CPU: processor sharing. The query is one runnable entity among the
  // background CPU demand; with `cores` processors its service rate shrinks
  // once total demand exceeds the core count.
  const double total_demand = load.cpu_demand + 1.0;  // +1 for the query
  f.cpu_factor = std::max(1.0, total_demand / machine.cpu_cores);

  // Disk: M/M/1-style queueing delay as background utilization rises.
  // Utilization is capped below 1 so the factor stays finite but grows
  // steeply — the nonlinearity the multi-state model approximates piecewise.
  const double rho =
      std::min(load.io_rate / machine.disk_io_capacity, 0.94);
  const double queueing = 1.0 / (1.0 - rho);
  f.rand_io_factor = queueing;
  // Sequential streams degrade less: readahead hides part of the queueing,
  // but heavy random background traffic still breaks up the stream.
  f.seq_io_factor = 1.0 + 0.55 * (queueing - 1.0);

  // Memory: background resident pressure shrinks the page cache, eroding the
  // buffer-pool hit ratio from the profile's idle value down to 10%.
  const double mem_pressure =
      std::clamp(load.memory_mb / machine.memory_mb, 0.0, 1.0);
  f.buffer_hit =
      std::max(0.10, profile.base_buffer_hit * (1.0 - 0.85 * mem_pressure));

  // Swap thrashing: once resident demand (plus a ~60 MB system baseline)
  // exceeds physical memory, every resource pays for page-stealing and
  // swap traffic — the steep knee the paper's Figure 1 shows above ~90
  // concurrent processes (3.8 s -> 124 s).
  // Overcommit is clamped: beyond ~2x physical memory the machine is
  // swap-bound and further processes queue rather than thrash harder.
  const double overcommit = std::clamp(
      (60.0 + load.memory_mb) / machine.memory_mb - 1.0, 0.0, 2.0);
  const double thrash =
      1.0 + 0.8 * overcommit + 0.8 * overcommit * overcommit;
  f.cpu_factor *= thrash;
  f.rand_io_factor *= thrash;
  f.seq_io_factor *= thrash;

  // Initialization combines CPU scheduling delay and one queued I/O round
  // trip (catalog/plan reads), so it inherits a blend of both factors.
  f.init_factor = 0.5 * f.cpu_factor + 0.5 * queueing * thrash;

  return f;
}

SlowdownFactors ApplyShift(const SlowdownFactors& factors,
                           const EnvironmentShift& shift) {
  SlowdownFactors f = factors;
  f.init_factor *= shift.init_scale;
  f.seq_io_factor *= shift.io_scale;
  f.rand_io_factor *= shift.io_scale;
  f.cpu_factor *= shift.cpu_scale;
  f.buffer_hit = std::clamp(f.buffer_hit * shift.buffer_hit_scale, 0.01, 1.0);
  return f;
}

}  // namespace mscm::sim
