#include "sim/fault_injector.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace mscm::sim {

const char* ToString(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kThrow:
      return "throw";
    case FaultKind::kNaN:
      return "nan";
    case FaultKind::kInf:
      return "inf";
    case FaultKind::kNegative:
      return "negative";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kDelay:
      return "delay";
  }
  return "?";
}

struct FaultInjector::State {
  FaultInjectorConfig config;

  std::mutex mutex;  // guards rng, scripted, hang bookkeeping
  std::condition_variable cv;
  Rng rng{0};
  std::deque<FaultKind> scripted;
  bool hangs_released = false;
  int hanging = 0;

  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> injected[kNumFaultKinds] = {};
};

FaultInjector::FaultInjector(FaultInjectorConfig config)
    : state_(std::make_shared<State>()) {
  const double sum = config.throw_rate + config.nan_rate + config.inf_rate +
                     config.negative_rate + config.hang_rate +
                     config.delay_rate;
  MSCM_CHECK_MSG(sum <= 1.0 + 1e-12, "fault rates must sum to at most 1");
  MSCM_CHECK(config.throw_rate >= 0.0 && config.nan_rate >= 0.0 &&
             config.inf_rate >= 0.0 && config.negative_rate >= 0.0 &&
             config.hang_rate >= 0.0 && config.delay_rate >= 0.0);
  state_->config = config;
  state_->rng.Seed(config.seed);
}

FaultInjector::~FaultInjector() { ReleaseHangs(); }

FaultKind FaultInjector::NextFaultImpl(State& state) {
  state.calls.fetch_add(1, std::memory_order_relaxed);
  FaultKind kind = FaultKind::kNone;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.scripted.empty()) {
      kind = state.scripted.front();
      state.scripted.pop_front();
    } else {
      // One uniform draw partitioned by the cumulative rates: the fault mix
      // is exactly the configured proportions, one rng advance per call.
      const double u = state.rng.NextDouble();
      const FaultInjectorConfig& c = state.config;
      double edge = c.throw_rate;
      if (u < edge) {
        kind = FaultKind::kThrow;
      } else if (u < (edge += c.nan_rate)) {
        kind = FaultKind::kNaN;
      } else if (u < (edge += c.inf_rate)) {
        kind = FaultKind::kInf;
      } else if (u < (edge += c.negative_rate)) {
        kind = FaultKind::kNegative;
      } else if (u < (edge += c.hang_rate)) {
        kind = FaultKind::kHang;
      } else if (u < (edge += c.delay_rate)) {
        kind = FaultKind::kDelay;
      }
    }
  }
  state.injected[static_cast<int>(kind)].fetch_add(1,
                                                   std::memory_order_relaxed);
  return kind;
}

void FaultInjector::HangImpl(State& state) {
  std::unique_lock<std::mutex> lock(state.mutex);
  ++state.hanging;
  state.cv.wait(lock, [&state] { return state.hangs_released; });
  --state.hanging;
}

double FaultInjector::InvokeFaulted(const std::shared_ptr<State>& state,
                                    const std::function<double()>& inner) {
  switch (NextFaultImpl(*state)) {
    case FaultKind::kNone:
      return inner();
    case FaultKind::kThrow:
      throw std::runtime_error("injected probe fault");
    case FaultKind::kNaN:
      return std::numeric_limits<double>::quiet_NaN();
    case FaultKind::kInf:
      return std::numeric_limits<double>::infinity();
    case FaultKind::kNegative:
      return -1.0;
    case FaultKind::kHang:
      // Once released (teardown), report an unmistakable failure value.
      HangImpl(*state);
      return std::numeric_limits<double>::quiet_NaN();
    case FaultKind::kDelay:
      std::this_thread::sleep_for(state->config.delay);
      return inner();
  }
  return inner();
}

std::function<double()> FaultInjector::WrapProbe(
    std::function<double()> inner) {
  return [state = state_, inner = std::move(inner)] {
    return InvokeFaulted(state, inner);
  };
}

void FaultInjector::ScheduleNext(FaultKind kind, int count) {
  MSCM_CHECK(count >= 0);
  std::lock_guard<std::mutex> lock(state_->mutex);
  for (int i = 0; i < count; ++i) state_->scripted.push_back(kind);
}

FaultKind FaultInjector::NextFault() { return NextFaultImpl(*state_); }

void FaultInjector::HangUntilReleased() { HangImpl(*state_); }

void FaultInjector::SleepDelay() {
  std::this_thread::sleep_for(state_->config.delay);
}

void FaultInjector::ReleaseHangs() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->hangs_released = true;
  state_->cv.notify_all();
}

int FaultInjector::hanging() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->hanging;
}

uint64_t FaultInjector::calls() const {
  return state_->calls.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::injected(FaultKind kind) const {
  return state_->injected[static_cast<int>(kind)].load(
      std::memory_order_relaxed);
}

std::optional<core::Observation> FaultyObservationSource::TryDraw() {
  switch (injector_->NextFault()) {
    case FaultKind::kNone:
      return inner_->TryDraw();
    case FaultKind::kThrow:
      throw std::runtime_error("injected sampling fault");
    case FaultKind::kNaN: {
      std::optional<core::Observation> obs = inner_->TryDraw();
      if (obs.has_value()) obs->cost = std::numeric_limits<double>::quiet_NaN();
      return obs;
    }
    case FaultKind::kInf: {
      std::optional<core::Observation> obs = inner_->TryDraw();
      if (obs.has_value()) obs->cost = std::numeric_limits<double>::infinity();
      return obs;
    }
    case FaultKind::kNegative: {
      std::optional<core::Observation> obs = inner_->TryDraw();
      if (obs.has_value()) obs->cost = -1.0;
      return obs;
    }
    case FaultKind::kHang:
      // A hung sampling query, once released, produced nothing.
      injector_->HangUntilReleased();
      return std::nullopt;
    case FaultKind::kDelay:
      injector_->SleepDelay();
      return inner_->TryDraw();
  }
  return inner_->TryDraw();
}

}  // namespace mscm::sim
