// Unix-style system statistics, mirroring the paper's Table 1 ("System Stats
// for Frequently-Changing Factors in Unix"). The environment monitor of the
// MDBS agent samples these; the probing-cost estimation technique (§3.3,
// Eq. 2) regresses probing costs on a subset of them.

#ifndef MSCM_SIM_SYSTEM_MONITOR_H_
#define MSCM_SIM_SYSTEM_MONITOR_H_

#include "common/rng.h"
#include "sim/contention_model.h"
#include "sim/load_builder.h"

namespace mscm::sim {

struct SystemStats {
  // CPU statistics (top/uptime style).
  double processes_running = 0.0;
  double processes_sleeping = 0.0;
  double pct_user = 0.0;
  double pct_system = 0.0;
  double pct_idle = 0.0;
  double load_avg_1 = 0.0;
  double load_avg_5 = 0.0;
  double load_avg_15 = 0.0;

  // Memory statistics (vmstat style), in MB.
  double mem_total = 0.0;
  double mem_used = 0.0;
  double mem_free = 0.0;
  double swap_used = 0.0;
  double swapped_in = 0.0;
  double swapped_out = 0.0;

  // I/O statistics (iostat style).
  double reads_per_sec = 0.0;
  double writes_per_sec = 0.0;
  double pct_disk_util = 0.0;

  // Other.
  double context_switches_per_sec = 0.0;
  double syscalls_per_sec = 0.0;
};

// The environment monitor: keeps exponentially-weighted load averages and
// produces noisy snapshots of the machine state (a real monitor observes
// counters with sampling error; the noise keeps the probing-cost estimation
// honest).
class SystemMonitor {
 public:
  SystemMonitor(const MachineSpec& machine, uint64_t seed)
      : machine_(machine), rng_(seed) {}

  // Advances the load averages toward the current load.
  void Tick(const MachineLoad& load, double dt_seconds);

  // Snapshot of statistics for the current load.
  SystemStats Snapshot(const MachineLoad& load);

 private:
  MachineSpec machine_;
  Rng rng_;
  double load_avg_1_ = 0.0;
  double load_avg_5_ = 0.0;
  double load_avg_15_ = 0.0;
};

}  // namespace mscm::sim

#endif  // MSCM_SIM_SYSTEM_MONITOR_H_
