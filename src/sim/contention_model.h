// Maps machine load to per-resource slowdown factors.
//
// This is the hidden ground truth the paper's method has to recover: the
// contention level affects the initialization, I/O *and* CPU terms of the
// query cost (paper §3.2 — which is why the *general* qualitative model is
// the appropriate one), and it does so nonlinearly (queueing effects), which
// is why a piecewise (multi-state) linear model fits far better than a
// single-state one.

#ifndef MSCM_SIM_CONTENTION_MODEL_H_
#define MSCM_SIM_CONTENTION_MODEL_H_

#include "sim/load_builder.h"
#include "sim/performance_profile.h"

namespace mscm::sim {

struct SlowdownFactors {
  double init_factor = 1.0;     // multiplies initialization time
  double seq_io_factor = 1.0;   // multiplies sequential page time
  double rand_io_factor = 1.0;  // multiplies random page time
  double cpu_factor = 1.0;      // multiplies CPU-op time
  double buffer_hit = 0.5;      // effective buffer-pool hit ratio
};

struct MachineSpec {
  double cpu_cores = 2.0;          // the paper's workstations were small SMPs
  // Sustainable background ops/sec. Chosen so that disk utilization reaches
  // its cap only near the top of the default 0–120-process load range: the
  // queueing delay then grows nonlinearly across the whole range instead of
  // saturating early.
  double disk_io_capacity = 700.0;
  double memory_mb = 512.0;        // physical memory
};

// Computes slowdown factors for a foreground query given the background
// machine load and the DBMS profile.
SlowdownFactors ComputeSlowdown(const MachineLoad& load,
                                const PerformanceProfile& profile,
                                const MachineSpec& machine = MachineSpec{});

// An occasionally-changing environment factor (paper §2): a persistent
// multiplicative change to the machine's cost surface that the contention
// gauge alone cannot fully track — a degraded/upgraded disk, a CPU
// governor change, a shrunken buffer pool. Applied on top of the
// load-derived slowdown, it shifts every cost the site produces and makes
// models derived before the shift drift until re-derived.
struct EnvironmentShift {
  double init_scale = 1.0;        // scales initialization slowdown
  double io_scale = 1.0;          // scales both I/O slowdowns
  double cpu_scale = 1.0;         // scales the CPU slowdown
  double buffer_hit_scale = 1.0;  // scales the buffer-pool hit ratio

  bool IsIdentity() const {
    return init_scale == 1.0 && io_scale == 1.0 && cpu_scale == 1.0 &&
           buffer_hit_scale == 1.0;
  }

  // A disk that got `factor`x slower (wear, RAID rebuild, noisy neighbor).
  static EnvironmentShift DegradedDisk(double factor) {
    EnvironmentShift s;
    s.io_scale = factor;
    s.init_scale = 0.5 * (1.0 + factor);  // init pays one I/O round trip
    return s;
  }

  // CPU service time scaled by `factor` (frequency scaling, co-tenancy).
  static EnvironmentShift ScaledCpu(double factor) {
    EnvironmentShift s;
    s.cpu_scale = factor;
    return s;
  }
};

// Applies `shift` to load-derived factors (hit ratio clamped to (0, 1]).
SlowdownFactors ApplyShift(const SlowdownFactors& factors,
                           const EnvironmentShift& shift);

}  // namespace mscm::sim

#endif  // MSCM_SIM_CONTENTION_MODEL_H_
