// Fleet-scale site population for federation soak scenarios.
//
// The paper derived cost models for two real systems (Oracle and DB2 on two
// workstations); a dynamic multidatabase deployment federates hundreds of
// autonomous sites whose contention regimes are neither independent nor
// stationary. This module generates that population deterministically from a
// seed: each site gets a performance profile interpolated between the
// calibrated Alpha (Oracle-like) and Beta (DB2-like) endpoints, a piecewise-
// linear cost surface over 2–4 contention states, and membership in a
// correlation group — sites sharing storage / a rack / a tenant whose load
// moves together.
//
// The fleet then drives every site's probing cost through three layered
// regimes:
//
//   * a diurnal sinusoid per group (phase-shifted, so "daytime" rolls across
//     the fleet the way load follows timezones);
//   * correlated spikes (TriggerSpike): a shared-storage incident that
//     lifts one whole group at once and decays linearly;
//   * per-site jitter, so no two sites in a group are ever bit-identical.
//
// Concurrency: Advance() and TriggerSpike() serialize on an internal mutex
// (one regime-driver thread is the intended shape); probing_cost() is a
// relaxed atomic load, safe from any number of prober threads with no
// ordering obligations — it models an instrument reading, not a message.
//
// The module is runtime-agnostic by design (mscm_sim cannot link mscm_core):
// tests and benches own the mapping from FleetSiteSpec to registered models.

#ifndef MSCM_SIM_FLEET_H_
#define MSCM_SIM_FLEET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mscm::sim {

struct FleetConfig {
  size_t num_sites = 208;
  // Correlation groups (shared storage / rack / tenant). Site i belongs to
  // group i % num_groups, so groups stay balanced under any fleet size.
  size_t num_groups = 8;
  uint64_t seed = 0xf1ee7ULL;
  // Contention states per site, drawn uniformly in [min_states, max_states].
  int min_states = 2;
  int max_states = 4;
  // The compressed "day": one full diurnal cycle per period.
  double diurnal_period_seconds = 2.0;
  // Peak-to-trough swing of the diurnal component, in probing-cost units
  // (contention states are one unit wide).
  double diurnal_amplitude = 0.6;
  // Uniform per-site, per-Advance jitter half-width.
  double jitter_amplitude = 0.15;
};

// Everything a harness needs to register one site against a runtime: the
// site's identity, its correlation group, and the ground-truth cost surface
// (state s covers probing cost (s, s+1]; a query with first feature x costs
// state_slopes[s] * x seconds there).
struct FleetSiteSpec {
  std::string name;
  size_t group = 0;
  int num_states = 2;
  std::vector<double> state_slopes;
  // Resting probing cost the regimes oscillate around.
  double base_probing = 0.5;
  // Profile interpolation factor: 0 = pure Alpha, 1 = pure Beta.
  double profile_mix = 0.0;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config = {});

  size_t num_sites() const { return specs_.size(); }
  const FleetSiteSpec& spec(size_t site) const { return specs_[site]; }

  // Current probing cost of `site` (relaxed atomic: any thread, any time).
  double probing_cost(size_t site) const {
    return costs_[site]->load(std::memory_order_relaxed);
  }

  // The contention state `probing` resolves to for `site` under the
  // piecewise partition state s = (s, s+1], clamped to the site's range —
  // the same mapping a model derived from the spec uses.
  int StateForProbing(size_t site, double probing) const;

  // Ground truth: what a query with first feature `x0` actually costs at
  // `site` when its probing cost reads `probing`. Deterministic — harnesses
  // layer their own observation noise.
  double ActualCost(size_t site, double x0, double probing) const;

  // Advances the regime clock by `dt_seconds` and recomputes every site's
  // probing cost (diurnal + active spikes + jitter, clamped inside the
  // site's state range). Call from one driver thread.
  void Advance(double dt_seconds);

  // Correlated contention incident: every site in `group` gains `magnitude`
  // probing-cost units, decaying linearly to zero over `duration_seconds`.
  // Overlapping spikes on one group keep the stronger remainder.
  void TriggerSpike(size_t group, double magnitude, double duration_seconds);

  // Regime-clock seconds accumulated by Advance().
  double time() const;

 private:
  struct GroupSpike {
    double magnitude = 0.0;
    double started_at = 0.0;
    double duration = 0.0;
  };

  const FleetConfig config_;
  std::vector<FleetSiteSpec> specs_;
  // unique_ptr: atomics are neither movable nor copyable, vectors resize.
  std::vector<std::unique_ptr<std::atomic<double>>> costs_;
  std::vector<double> group_phase_;   // diurnal phase offset per group
  std::vector<uint64_t> jitter_seed_; // per-site jitter stream

  mutable std::mutex mutex_;  // guards time_, spikes_, jitter state
  double time_ = 0.0;
  std::vector<GroupSpike> spikes_;
  uint64_t jitter_counter_ = 0;
};

}  // namespace mscm::sim

#endif  // MSCM_SIM_FLEET_H_
