// The load builder: the component of the MDBS agent that "generates dynamic
// loads to simulate dynamic application environments" (paper §5, Figure 3).
//
// It maintains a population of synthetic concurrent processes, each with a
// CPU share, an I/O issue rate and a resident memory demand. The aggregate
// demands define the machine load, which the contention model converts into
// per-resource slowdown factors, and which the system monitor reports as
// Unix-style statistics.
//
// Regimes control how the number of processes is drawn:
//  * kSteady       — a fixed level (the "static environment" baseline);
//  * kUniform      — each resample draws uniformly from [min, max]
//                    (the paper's uniform contention-distribution case);
//  * kClustered    — a mixture of Gaussians (the paper's clustered case,
//                    Figure 10);
//  * kRandomWalk   — continuous evolution for the monitoring example.

#ifndef MSCM_SIM_LOAD_BUILDER_H_
#define MSCM_SIM_LOAD_BUILDER_H_

#include <vector>

#include "common/rng.h"

namespace mscm::sim {

enum class LoadRegime {
  kSteady,
  kUniform,
  kClustered,
  kRandomWalk,
  // Diurnal cycle: the process count follows a sinusoid between min and max
  // with configurable period, plus walk noise — a business-day load curve.
  kPeriodic,
};

struct GaussianClusterSpec {
  double center = 0.0;  // in process counts
  double stddev = 1.0;
  double weight = 1.0;
};

struct LoadRegimeConfig {
  LoadRegime regime = LoadRegime::kUniform;
  double min_processes = 0.0;
  double max_processes = 120.0;
  double steady_processes = 5.0;
  // Clustered regime: defaults chosen to resemble the paper's Figure 10
  // (light / medium / heavy usage clusters with clear gaps).
  std::vector<GaussianClusterSpec> clusters = {
      {10.0, 3.0, 0.40}, {58.0, 4.0, 0.35}, {104.0, 3.5, 0.25}};
  // Random-walk regime: per-second drift standard deviation.
  double walk_stddev = 3.0;
  // Periodic regime: cycle length in (simulated) seconds.
  double period_seconds = 86400.0;
};

// Aggregate demand on the local machine from the background processes.
struct MachineLoad {
  double num_processes = 0.0;   // concurrently running background processes
  double cpu_demand = 0.0;      // sum of per-process CPU shares (cores' worth)
  double io_rate = 0.0;         // background I/O operations per second
  double memory_mb = 0.0;       // background resident memory
};

class LoadBuilder {
 public:
  LoadBuilder(const LoadRegimeConfig& config, uint64_t seed);

  // Draws a fresh independent contention point from the regime distribution
  // (the sampling procedure runs each sample query at such a point).
  void Resample();

  // Evolves the load continuously by `dt` seconds (random-walk regime; for
  // the other regimes this adds small within-level jitter).
  void Advance(double dt_seconds);

  // Pins the process count to a specific level (used by targeted resampling
  // when a contention state needs more observations, and by sweeps).
  void SetProcessCount(double n);

  const MachineLoad& Current() const { return load_; }
  const LoadRegimeConfig& config() const { return config_; }

 private:
  // Deterministic sinusoid level for the current phase (periodic regime).
  double PeriodicLevel() const;

  // Recomputes aggregate demands for the current process count. When
  // `redraw_population` is set, the per-process demand mix is re-drawn (a new
  // population of background processes); otherwise the existing mix persists,
  // so consecutive measurements at one contention point (probe, then sample
  // query) see the same environment.
  void Materialize(bool redraw_population);

  LoadRegimeConfig config_;
  Rng rng_;
  double processes_ = 0.0;
  double phase_seconds_ = 0.0;  // position within the periodic cycle
  double cpu_jitter_ = 1.0;
  double io_jitter_ = 1.0;
  double mem_jitter_ = 1.0;
  MachineLoad load_;
};

}  // namespace mscm::sim

#endif  // MSCM_SIM_LOAD_BUILDER_H_
