// Network links between the global MDBS server and the local sites.
//
// The paper footnotes (§2, fn. 1) that an MDBS also has dynamic *network*
// environmental factors, studied elsewhere (Urhan et al., cost-based query
// scrambling). This module supplies that substrate: each site is reached
// over a link whose effective bandwidth and round-trip latency vary with
// background traffic, following the same gauge-by-probing philosophy — the
// global planner measures a small ping/transfer probe and treats the result
// as the link's current condition.

#ifndef MSCM_SIM_NETWORK_H_
#define MSCM_SIM_NETWORK_H_

#include <string>

#include "common/rng.h"

namespace mscm::sim {

struct NetworkLinkConfig {
  std::string name = "link";
  // Nominal capacity of the link, bytes per second.
  double bandwidth_bytes_per_sec = 1.0e6;
  // Base round-trip latency, seconds.
  double base_latency_seconds = 0.004;
  // Background utilization evolves as a mean-reverting walk in [0, max].
  double mean_utilization = 0.3;
  double max_utilization = 0.92;
  double utilization_walk_stddev = 0.05;  // per sqrt-second
  // Multiplicative noise on each transfer (coefficient of variation).
  double noise_cv = 0.08;
};

class NetworkLink {
 public:
  NetworkLink(const NetworkLinkConfig& config, uint64_t seed);

  // Evolves the background traffic.
  void Advance(double dt_seconds);

  // Jumps to an independent utilization draw.
  void Resample();

  // Pins the background utilization (for sweeps/tests).
  void SetUtilization(double u);

  double utilization() const { return utilization_; }

  // Effective bytes/sec left for a foreground transfer right now.
  double EffectiveBandwidth() const;

  // Observed time to ship `bytes` over the link now (latency + transfer,
  // with noise). Advances the background walk by the elapsed time.
  double Transfer(double bytes);

  // The network probing operation: ships a small fixed payload and returns
  // its observed cost — the link-condition gauge, mirroring the local
  // probing query.
  double Probe();

  const NetworkLinkConfig& config() const { return config_; }

 private:
  double TransferSecondsNoiseless(double bytes) const;

  NetworkLinkConfig config_;
  Rng rng_;
  double utilization_ = 0.0;
};

}  // namespace mscm::sim

#endif  // MSCM_SIM_NETWORK_H_
