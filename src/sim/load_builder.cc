#include "sim/load_builder.h"

#include <algorithm>
#include <cmath>

namespace mscm::sim {
namespace {

// Average per-process demands. The population mix varies around these so two
// contention points with the same process count still differ a little — one
// of several reasons the latent contention level is only *gauged*, never
// observed exactly, by the probing query.
constexpr double kCpuSharePerProcess = 0.15;     // cores' worth
constexpr double kIoRatePerProcess = 5.5;        // ops/sec
constexpr double kMemoryPerProcessMb = 9.0;      // resident MB

}  // namespace

LoadBuilder::LoadBuilder(const LoadRegimeConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  MSCM_CHECK(config_.max_processes >= config_.min_processes);
  Resample();
}

void LoadBuilder::Resample() {
  switch (config_.regime) {
    case LoadRegime::kSteady:
      processes_ = config_.steady_processes;
      break;
    case LoadRegime::kUniform:
      processes_ = rng_.Uniform(config_.min_processes, config_.max_processes);
      break;
    case LoadRegime::kClustered: {
      MSCM_CHECK(!config_.clusters.empty());
      double total_weight = 0.0;
      for (const auto& c : config_.clusters) total_weight += c.weight;
      double pick = rng_.Uniform(0.0, total_weight);
      const GaussianClusterSpec* chosen = &config_.clusters.back();
      for (const auto& c : config_.clusters) {
        if (pick < c.weight) {
          chosen = &c;
          break;
        }
        pick -= c.weight;
      }
      processes_ = rng_.Gaussian(chosen->center, chosen->stddev);
      break;
    }
    case LoadRegime::kRandomWalk:
      // A fresh draw for walk mode starts anywhere in range.
      processes_ = rng_.Uniform(config_.min_processes, config_.max_processes);
      break;
    case LoadRegime::kPeriodic:
      // A fresh draw lands at a random point in the cycle.
      phase_seconds_ = rng_.Uniform(0.0, config_.period_seconds);
      processes_ = PeriodicLevel();
      break;
  }
  processes_ = std::clamp(processes_, config_.min_processes,
                          config_.max_processes);
  Materialize(/*redraw_population=*/true);
}

void LoadBuilder::Advance(double dt_seconds) {
  MSCM_CHECK(dt_seconds >= 0.0);
  if (config_.regime == LoadRegime::kRandomWalk) {
    processes_ += rng_.Gaussian(0.0, config_.walk_stddev * std::sqrt(dt_seconds));
  } else if (config_.regime == LoadRegime::kPeriodic) {
    phase_seconds_ = std::fmod(phase_seconds_ + dt_seconds,
                               config_.period_seconds);
    processes_ = PeriodicLevel() +
                 rng_.Gaussian(0.0, 0.5 * std::sqrt(std::min(dt_seconds, 60.0)));
  } else {
    // Small within-level churn: processes come and go.
    processes_ += rng_.Gaussian(0.0, 0.25 * std::sqrt(dt_seconds));
  }
  processes_ = std::clamp(processes_, config_.min_processes,
                          config_.max_processes);
  Materialize(/*redraw_population=*/false);
}

void LoadBuilder::SetProcessCount(double n) {
  processes_ = std::clamp(n, config_.min_processes, config_.max_processes);
  Materialize(/*redraw_population=*/true);
}

double LoadBuilder::PeriodicLevel() const {
  const double t = phase_seconds_ / config_.period_seconds;  // 0..1
  const double wave = 0.5 - 0.5 * std::cos(2.0 * M_PI * t);  // trough at t=0
  return config_.min_processes +
         wave * (config_.max_processes - config_.min_processes);
}

void LoadBuilder::Materialize(bool redraw_population) {
  if (redraw_population) {
    // ±8% population mix noise.
    cpu_jitter_ = std::max(0.2, 1.0 + 0.08 * rng_.Gaussian());
    io_jitter_ = std::max(0.2, 1.0 + 0.08 * rng_.Gaussian());
    mem_jitter_ = std::max(0.2, 1.0 + 0.05 * rng_.Gaussian());
  }
  load_.num_processes = processes_;
  load_.cpu_demand =
      std::max(0.0, processes_ * kCpuSharePerProcess * cpu_jitter_);
  load_.io_rate = std::max(0.0, processes_ * kIoRatePerProcess * io_jitter_);
  load_.memory_mb =
      std::max(0.0, processes_ * kMemoryPerProcessMb * mem_jitter_);
}

}  // namespace mscm::sim
