#include "sim/network.h"

#include <algorithm>
#include <cmath>

namespace mscm::sim {
namespace {

// Fixed probe payload: small enough to be cheap, big enough that transfer
// time (not just latency) registers in the gauge.
constexpr double kProbeBytes = 64.0 * 1024.0;

}  // namespace

NetworkLink::NetworkLink(const NetworkLinkConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  MSCM_CHECK(config_.bandwidth_bytes_per_sec > 0.0);
  MSCM_CHECK(config_.max_utilization > 0.0 && config_.max_utilization < 1.0);
  Resample();
}

void NetworkLink::Advance(double dt_seconds) {
  MSCM_CHECK(dt_seconds >= 0.0);
  // Mean-reverting (Ornstein–Uhlenbeck-style) background traffic.
  const double reversion = 1.0 - std::exp(-dt_seconds / 120.0);
  utilization_ += reversion * (config_.mean_utilization - utilization_);
  utilization_ += rng_.Gaussian(
      0.0, config_.utilization_walk_stddev * std::sqrt(dt_seconds));
  utilization_ = std::clamp(utilization_, 0.0, config_.max_utilization);
}

void NetworkLink::Resample() {
  // Beta-like draw around the mean via clamped Gaussian.
  utilization_ = std::clamp(
      rng_.Gaussian(config_.mean_utilization, 0.18), 0.0,
      config_.max_utilization);
}

void NetworkLink::SetUtilization(double u) {
  utilization_ = std::clamp(u, 0.0, config_.max_utilization);
}

double NetworkLink::EffectiveBandwidth() const {
  return config_.bandwidth_bytes_per_sec * (1.0 - utilization_);
}

double NetworkLink::TransferSecondsNoiseless(double bytes) const {
  MSCM_CHECK(bytes >= 0.0);
  // Latency inflates with congestion (queueing at the bottleneck router).
  const double latency =
      config_.base_latency_seconds / (1.0 - utilization_);
  return latency + bytes / EffectiveBandwidth();
}

double NetworkLink::Transfer(double bytes) {
  const double base = TransferSecondsNoiseless(bytes);
  const double cv = config_.noise_cv;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double noise =
      std::exp(rng_.Gaussian(-0.5 * sigma2, std::sqrt(sigma2)));
  const double elapsed = base * noise;
  Advance(elapsed);
  return elapsed;
}

double NetworkLink::Probe() { return Transfer(kProbeBytes); }

}  // namespace mscm::sim
