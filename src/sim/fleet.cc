#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/rng.h"
#include "sim/performance_profile.h"

namespace mscm::sim {

namespace {

constexpr double kTwoPi = 6.283185307179586;

// Stateless per-(site, tick) jitter stream: SplitMix64 finalizer over the
// site's seed xor'd with the tick counter. No per-site Rng objects to keep
// in sync with Advance order.
double JitterUnit(uint64_t seed, uint64_t tick) {
  uint64_t z = seed ^ (tick * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
}

// Linear interpolation between the two calibrated profile endpoints.
double Mix(double alpha, double beta, double t) {
  return alpha + (beta - alpha) * t;
}

}  // namespace

Fleet::Fleet(FleetConfig config) : config_(config) {
  MSCM_CHECK_MSG(config_.num_sites > 0, "fleet needs at least one site");
  MSCM_CHECK_MSG(config_.num_groups > 0, "fleet needs at least one group");
  MSCM_CHECK_MSG(
      config_.min_states >= 1 && config_.min_states <= config_.max_states,
      "fleet state range must satisfy 1 <= min_states <= max_states");

  const PerformanceProfile alpha = PerformanceProfile::Alpha();
  const PerformanceProfile beta = PerformanceProfile::Beta();

  Rng rng(config_.seed);
  specs_.reserve(config_.num_sites);
  costs_.reserve(config_.num_sites);
  jitter_seed_.reserve(config_.num_sites);
  for (size_t i = 0; i < config_.num_sites; ++i) {
    FleetSiteSpec spec;
    char name[32];
    std::snprintf(name, sizeof(name), "site-%04zu", i);
    spec.name = name;
    spec.group = i % config_.num_groups;
    spec.num_states = static_cast<int>(
        rng.UniformInt(config_.min_states, config_.max_states));
    spec.profile_mix = rng.NextDouble();

    // A profile-derived base slope (seconds of work per unit of the first
    // feature): a feature unit stands for a bundle of sequential pages,
    // scattered pages and per-tuple CPU whose timings come from the
    // interpolated profile. Alpha's seek-heavy storage and Beta's leaner
    // CPU path land sites on visibly different surfaces, like the paper's
    // Table 4 does for its two systems.
    const double m = spec.profile_mix;
    const double base_slope =
        40.0 * Mix(alpha.seq_page_seconds, beta.seq_page_seconds, m) +
        10.0 * Mix(alpha.rand_page_seconds, beta.rand_page_seconds, m) +
        2000.0 * Mix(alpha.tuple_cpu_seconds, beta.tuple_cpu_seconds, m) +
        2000.0 * Mix(alpha.pred_eval_seconds, beta.pred_eval_seconds, m);
    // Contention multiplies cost state over state; buffering softens the
    // blow (a strong buffer pool absorbs more of the extra load).
    const double buffer = Mix(alpha.base_buffer_hit, beta.base_buffer_hit, m);
    const double step = 1.0 + (1.8 - buffer) * rng.Uniform(0.8, 1.2);
    spec.state_slopes.resize(static_cast<size_t>(spec.num_states));
    double slope = base_slope * rng.Uniform(0.7, 1.3);
    for (int s = 0; s < spec.num_states; ++s) {
      spec.state_slopes[static_cast<size_t>(s)] = slope;
      slope *= step;
    }

    // Rest somewhere strictly inside the state range so the regimes can
    // push the site across boundaries in both directions.
    spec.base_probing =
        rng.Uniform(0.25, static_cast<double>(spec.num_states) - 0.25);

    costs_.push_back(
        std::make_unique<std::atomic<double>>(spec.base_probing));
    jitter_seed_.push_back(rng.NextUint64());
    specs_.push_back(std::move(spec));
  }

  group_phase_.resize(config_.num_groups);
  for (size_t g = 0; g < config_.num_groups; ++g) {
    // Evenly staggered phases: load rolls across groups like timezones.
    group_phase_[g] =
        static_cast<double>(g) / static_cast<double>(config_.num_groups);
  }
  spikes_.resize(config_.num_groups);
}

int Fleet::StateForProbing(size_t site, double probing) const {
  const FleetSiteSpec& spec = specs_[site];
  // State s covers (s, s+1]: ceil(p) - 1, clamped to the site's range.
  const int raw = static_cast<int>(std::ceil(probing)) - 1;
  return std::clamp(raw, 0, spec.num_states - 1);
}

double Fleet::ActualCost(size_t site, double x0, double probing) const {
  const FleetSiteSpec& spec = specs_[site];
  const int state = StateForProbing(site, probing);
  return spec.state_slopes[static_cast<size_t>(state)] * x0;
}

void Fleet::Advance(double dt_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  time_ += dt_seconds;
  const uint64_t tick = ++jitter_counter_;

  // Per-group regime components, computed once.
  std::vector<double> group_shift(config_.num_groups, 0.0);
  for (size_t g = 0; g < config_.num_groups; ++g) {
    const double phase = time_ / config_.diurnal_period_seconds +
                         group_phase_[g];
    double shift = 0.5 * config_.diurnal_amplitude * std::sin(kTwoPi * phase);
    const GroupSpike& spike = spikes_[g];
    if (spike.magnitude > 0.0 && spike.duration > 0.0) {
      const double elapsed = time_ - spike.started_at;
      if (elapsed < spike.duration) {
        shift += spike.magnitude * (1.0 - elapsed / spike.duration);
      }
    }
    group_shift[g] = shift;
  }

  for (size_t i = 0; i < specs_.size(); ++i) {
    const FleetSiteSpec& spec = specs_[i];
    const double jitter =
        config_.jitter_amplitude * (2.0 * JitterUnit(jitter_seed_[i], tick) -
                                    1.0);
    const double hi = static_cast<double>(spec.num_states) - 0.05;
    const double cost = std::clamp(
        spec.base_probing + group_shift[spec.group] + jitter, 0.05, hi);
    costs_[i]->store(cost, std::memory_order_relaxed);
  }
}

void Fleet::TriggerSpike(size_t group, double magnitude,
                         double duration_seconds) {
  MSCM_CHECK_MSG(group < config_.num_groups, "spike group out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  GroupSpike& spike = spikes_[group];
  // Keep the stronger remainder when spikes overlap.
  double remaining = 0.0;
  if (spike.magnitude > 0.0 && spike.duration > 0.0) {
    const double elapsed = time_ - spike.started_at;
    if (elapsed < spike.duration) {
      remaining = spike.magnitude * (1.0 - elapsed / spike.duration);
    }
  }
  if (magnitude >= remaining) {
    spike.magnitude = magnitude;
    spike.started_at = time_;
    spike.duration = duration_seconds;
  }
}

double Fleet::time() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return time_;
}

}  // namespace mscm::sim
