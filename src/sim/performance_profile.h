// Per-DBMS performance profiles.
//
// The paper's testbed ran Oracle 8.0 and DB2 5.0 on two SUN UltraSparc 2
// workstations. We model each local DBMS as a vector of unit-work timings
// plus planner behaviour. Profile "alpha" and "beta" differ in their
// initialization overhead, I/O and CPU rates, buffering, and noise — enough
// that the derived cost models come out visibly different per site, as the
// paper's Table 4 shows for the two systems.
//
// Unit timings are loosely calibrated to the paper's hardware so headline
// magnitudes land in the same range (e.g. the Figure 1 query costs a few
// seconds idle and ~2 minutes under heavy contention).

#ifndef MSCM_SIM_PERFORMANCE_PROFILE_H_
#define MSCM_SIM_PERFORMANCE_PROFILE_H_

#include <string>

#include "engine/access_path.h"

namespace mscm::sim {

struct PerformanceProfile {
  std::string name;

  // Seconds per unit of work, uncontended.
  double init_seconds = 0.02;          // per init op (plan setup, descents)
  double seq_page_seconds = 0.004;     // per sequential page read
  double rand_page_seconds = 0.011;    // per random page read (seek-bound)
  double tuple_cpu_seconds = 12e-6;    // per tuple fetched
  double pred_eval_seconds = 6e-6;     // per qualification evaluation
  double compare_seconds = 2.5e-6;     // per sort/merge comparison
  double hash_seconds = 4e-6;          // per hash build/probe op
  double result_tuple_seconds = 8e-6;  // per result tuple formed
  double result_byte_seconds = 6e-9;   // per result byte materialized

  // Fraction of random page requests satisfied by the buffer pool when the
  // machine is idle. Memory contention erodes this (see ContentionModel).
  double base_buffer_hit = 0.55;

  // Multiplicative log-normal noise applied to every observed cost
  // (coefficient of variation).
  double noise_cv = 0.06;

  engine::PlannerRules planner;

  // Oracle-like profile: heavier per-query initialization, strong buffering,
  // hash joins preferred.
  static PerformanceProfile Alpha();

  // DB2-like profile: leaner startup, faster CPU path, sort-merge preferred,
  // slightly weaker default buffering.
  static PerformanceProfile Beta();
};

}  // namespace mscm::sim

#endif  // MSCM_SIM_PERFORMANCE_PROFILE_H_
