#include "sim/cost_simulator.h"

#include <cmath>

namespace mscm::sim {

double NoiselessElapsedSeconds(const engine::WorkCounters& work,
                               const SlowdownFactors& slowdown,
                               const PerformanceProfile& profile) {
  // Random page requests are first filtered through the buffer pool; only
  // misses pay the (contended) random I/O time. Hits still pay a CPU-ish
  // lookup charge folded into tuple CPU below.
  const double random_misses = work.random_pages * (1.0 - slowdown.buffer_hit);

  const double init = work.init_ops * profile.init_seconds *
                      slowdown.init_factor;
  const double seq_io = work.sequential_pages * profile.seq_page_seconds *
                        slowdown.seq_io_factor;
  const double rand_io = random_misses * profile.rand_page_seconds *
                         slowdown.rand_io_factor;
  const double cpu =
      (work.tuples_read * profile.tuple_cpu_seconds +
       work.predicate_evals * profile.pred_eval_seconds +
       work.compare_ops * profile.compare_seconds +
       work.hash_ops * profile.hash_seconds +
       work.result_tuples * profile.result_tuple_seconds +
       work.result_bytes * profile.result_byte_seconds) *
      slowdown.cpu_factor;

  return init + seq_io + rand_io + cpu;
}

double SimulateElapsedSeconds(const engine::WorkCounters& work,
                              const SlowdownFactors& slowdown,
                              const PerformanceProfile& profile, Rng& rng) {
  const double base = NoiselessElapsedSeconds(work, slowdown, profile);
  // Log-normal multiplicative noise with the profile's coefficient of
  // variation: sigma^2 = ln(1 + cv^2), mean-preserving.
  const double cv = profile.noise_cv;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double noise =
      std::exp(rng.Gaussian(-0.5 * sigma2, std::sqrt(sigma2)));
  return base * noise;
}

}  // namespace mscm::sim
