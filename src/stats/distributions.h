// Probability distributions used for model validation: the F distribution
// (significance of the overall regression) and Student's t (coefficient
// significance). Both are expressed through the regularized incomplete beta.

#ifndef MSCM_STATS_DISTRIBUTIONS_H_
#define MSCM_STATS_DISTRIBUTIONS_H_

namespace mscm::stats {

// CDF of the F distribution with (d1, d2) degrees of freedom at f >= 0.
double FCdf(double f, double d1, double d2);

// Survival function P(F > f); the p-value of an F test.
double FSurvival(double f, double d1, double d2);

// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

// Two-sided p-value for a t statistic.
double StudentTTwoSidedPValue(double t, double df);

// Upper quantile helpers via bisection (used for confidence thresholds).
// Returns f such that FSurvival(f, d1, d2) == alpha.
double FUpperQuantile(double alpha, double d1, double d2);

// Returns t such that P(T > t) == alpha for T ~ t(df), i.e. the critical
// value for a one-sided test (use alpha/2 for two-sided intervals).
double StudentTUpperQuantile(double alpha, double df);

}  // namespace mscm::stats

#endif  // MSCM_STATS_DISTRIBUTIONS_H_
