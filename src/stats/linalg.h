// Linear solvers for the regression machinery.
//
// Least squares is solved through a Householder QR factorization with column
// checks for rank deficiency; symmetric positive-definite systems (normal
// equations, VIF computations) can also be solved by Cholesky. QR is the
// default path in OLS because indicator-variable design matrices are often
// poorly conditioned for the normal-equation route.

#ifndef MSCM_STATS_LINALG_H_
#define MSCM_STATS_LINALG_H_

#include <optional>
#include <vector>

#include "stats/matrix.h"

namespace mscm::stats {

// Solves A x = b for symmetric positive definite A via Cholesky.
// Returns nullopt if A is not positive definite (within tolerance).
std::optional<std::vector<double>> CholeskySolve(const Matrix& a,
                                                 const std::vector<double>& b);

// Inverse of a symmetric positive definite matrix, or nullopt.
std::optional<Matrix> SpdInverse(const Matrix& a);

struct LeastSquaresResult {
  std::vector<double> coefficients;
  // (X^T X)^{-1}: coefficient covariance structure — diagonal gives
  // coefficient standard errors, the full matrix gives prediction intervals.
  Matrix xtx_inverse;
  // Diagonal of xtx_inverse (kept for convenience).
  std::vector<double> xtx_inverse_diagonal;
  // True if the design matrix was (numerically) rank deficient. Coefficients
  // are still produced with tiny ridge regularization in that case.
  bool rank_deficient = false;
};

// Minimizes ||X beta - y||_2 via Householder QR.
// Requires X.rows() >= X.cols() >= 1 and y.size() == X.rows().
LeastSquaresResult SolveLeastSquares(const Matrix& x,
                                     const std::vector<double>& y);

}  // namespace mscm::stats

#endif  // MSCM_STATS_LINALG_H_
