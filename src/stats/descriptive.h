// Descriptive statistics and histogram utilities.

#ifndef MSCM_STATS_DESCRIPTIVE_H_
#define MSCM_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace mscm::stats {

double Mean(const std::vector<double>& xs);

// Sample variance (divides by n-1). Zero for fewer than two values.
double Variance(const std::vector<double>& xs);

double StdDev(const std::vector<double>& xs);

double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

// Linear-interpolation quantile, q in [0, 1].
double Quantile(std::vector<double> xs, double q);

double Median(const std::vector<double>& xs);

struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary Summarize(const std::vector<double>& xs);

// Equal-width histogram over [lo, hi] with `bins` buckets. Values outside
// the range are clamped into the edge buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<size_t> counts;

  double BinWidth() const;
  double BinCenter(size_t i) const;
};

Histogram BuildHistogram(const std::vector<double>& xs, double lo, double hi,
                         size_t bins);

}  // namespace mscm::stats

#endif  // MSCM_STATS_DESCRIPTIVE_H_
