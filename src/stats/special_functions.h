// Special functions needed by the statistical distributions: log-gamma and
// the regularized incomplete beta function. Implementations follow the
// classical Lanczos / continued-fraction formulations (Numerical Recipes
// style) and are unit-tested against known values.

#ifndef MSCM_STATS_SPECIAL_FUNCTIONS_H_
#define MSCM_STATS_SPECIAL_FUNCTIONS_H_

namespace mscm::stats {

// ln(Gamma(x)) for x > 0.
double LogGamma(double x);

// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
// x in [0, 1]. Evaluated by the Lentz continued fraction.
double RegularizedIncompleteBeta(double a, double b, double x);

// Error function erf(x), via the regularized incomplete gamma relation is
// overkill; we use a high-accuracy rational approximation (|err| < 1.2e-7),
// sufficient for normal CDF uses in this library.
double Erf(double x);

// Standard normal CDF.
double NormalCdf(double z);

}  // namespace mscm::stats

#endif  // MSCM_STATS_SPECIAL_FUNCTIONS_H_
