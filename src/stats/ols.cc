#include "stats/ols.h"

#include <cmath>

#include "common/check.h"
#include "stats/distributions.h"
#include "stats/linalg.h"

namespace mscm::stats {

double OlsResult::Predict(const std::vector<double>& design_row) const {
  MSCM_CHECK(design_row.size() == coefficients.size());
  double acc = 0.0;
  for (size_t i = 0; i < design_row.size(); ++i) {
    acc += coefficients[i] * design_row[i];
  }
  return acc;
}

double OlsResult::PredictionStandardError(
    const std::vector<double>& design_row) const {
  if (xtx_inverse.empty()) return 0.0;
  MSCM_CHECK(design_row.size() == xtx_inverse.rows());
  const std::vector<double> vx = xtx_inverse * design_row;
  double quad = 0.0;
  for (size_t i = 0; i < design_row.size(); ++i) quad += design_row[i] * vx[i];
  return standard_error * std::sqrt(std::max(0.0, 1.0 + quad));
}

OlsResult FitOls(const Matrix& x, const std::vector<double>& y) {
  const size_t n = x.rows();
  const size_t p = x.cols();
  MSCM_CHECK(y.size() == n);
  MSCM_CHECK_MSG(n >= p && p >= 1, "need at least as many rows as columns");

  LeastSquaresResult ls = SolveLeastSquares(x, y);

  OlsResult out;
  out.n = n;
  out.p = p;
  out.rank_deficient = ls.rank_deficient;
  out.coefficients = ls.coefficients;
  out.xtx_inverse = ls.xtx_inverse;

  out.fitted = x * out.coefficients;
  out.residuals.resize(n);
  double mean_y = 0.0;
  for (double v : y) mean_y += v;
  mean_y /= static_cast<double>(n);

  out.sse = 0.0;
  out.sst = 0.0;
  for (size_t i = 0; i < n; ++i) {
    out.residuals[i] = y[i] - out.fitted[i];
    out.sse += out.residuals[i] * out.residuals[i];
    out.sst += (y[i] - mean_y) * (y[i] - mean_y);
  }

  out.r_squared = (out.sst > 1e-300) ? 1.0 - out.sse / out.sst : 1.0;
  // Clamp for numerically-perfect fits.
  if (out.r_squared < 0.0) out.r_squared = 0.0;
  if (out.r_squared > 1.0) out.r_squared = 1.0;

  const double dof_resid = static_cast<double>(n) - static_cast<double>(p);
  if (dof_resid > 0.0) {
    out.standard_error = std::sqrt(out.sse / dof_resid);
    if (p >= 2 && out.sst > 1e-300) {
      out.adjusted_r_squared =
          1.0 - (1.0 - out.r_squared) *
                    (static_cast<double>(n - 1) / dof_resid);
      const double ssr = out.sst - out.sse;
      const double dof_model = static_cast<double>(p - 1);
      const double msr = ssr / dof_model;
      const double mse = out.sse / dof_resid;
      if (mse > 1e-300) {
        out.f_statistic = msr / mse;
        out.f_pvalue = FSurvival(out.f_statistic, dof_model, dof_resid);
      } else {
        out.f_statistic = 1e12;  // perfect fit
        out.f_pvalue = 0.0;
      }
    }
  }

  // Coefficient standard errors and t statistics: se_j = s * sqrt(diag_j).
  out.standard_errors.resize(p, 0.0);
  out.t_statistics.resize(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    const double diag = ls.xtx_inverse_diagonal[j];
    if (diag > 0.0 && out.standard_error > 0.0) {
      out.standard_errors[j] = out.standard_error * std::sqrt(diag);
      out.t_statistics[j] = out.coefficients[j] / out.standard_errors[j];
    }
  }
  return out;
}

double VarianceInflationFactor(const Matrix& x, size_t col) {
  MSCM_CHECK(col < x.cols());
  MSCM_CHECK_MSG(x.cols() >= 2, "VIF needs at least two design columns");
  const std::vector<double> target = x.Column(col);
  const Matrix rest = x.WithoutColumn(col);
  if (rest.rows() < rest.cols()) return 1e12;
  OlsResult aux = FitOls(rest, target);
  const double r2 = aux.r_squared;
  if (r2 >= 1.0 - 1e-12) return 1e12;
  return 1.0 / (1.0 - r2);
}

}  // namespace mscm::stats
