// Regression residual diagnostics for model validation (§4.3 uses VIF; the
// underlying static query sampling method additionally examined residual
// behaviour — outliers, autocorrelation, normality — before accepting a
// model; these are the standard tools for that examination).

#ifndef MSCM_STATS_DIAGNOSTICS_H_
#define MSCM_STATS_DIAGNOSTICS_H_

#include <cstddef>
#include <vector>

#include "stats/ols.h"

namespace mscm::stats {

// Residuals scaled by the model's standard error of estimation (internal
// scaling; leverage corrections are intentionally omitted — at the sample
// sizes Proposition 4.1 mandates, hat-values are uniformly small).
std::vector<double> StandardizedResiduals(const OlsResult& fit);

// Indices of observations whose |standardized residual| exceeds `threshold`.
std::vector<size_t> FlagOutliers(const std::vector<double>& standardized,
                                 double threshold = 3.0);

// Durbin–Watson statistic: ~2 for uncorrelated residuals, toward 0 under
// positive serial correlation, toward 4 under negative.
double DurbinWatson(const std::vector<double>& residuals);

struct NormalityReport {
  double skewness = 0.0;
  double excess_kurtosis = 0.0;
  // Jarque–Bera statistic and its chi-squared(2) p-value.
  double jarque_bera = 0.0;
  double p_value = 1.0;
};

NormalityReport TestNormality(const std::vector<double>& residuals);

}  // namespace mscm::stats

#endif  // MSCM_STATS_DIAGNOSTICS_H_
