#include "stats/linalg.h"

#include <cmath>

namespace mscm::stats {
namespace {

// Householder QR in-place on a copy of X augmented with y.
// After factorization, the upper triangle of `a` is R and `rhs` holds Q^T y.
// Returns per-column pivot magnitudes for rank detection.
struct QrState {
  Matrix r;               // upper-triangular factor (cols x cols)
  std::vector<double> qty;  // first cols entries of Q^T y
  bool rank_deficient = false;
};

QrState HouseholderQr(const Matrix& x, const std::vector<double>& y) {
  const size_t m = x.rows();
  const size_t n = x.cols();
  MSCM_CHECK(m >= n && n >= 1);
  MSCM_CHECK(y.size() == m);

  // Work on dense copies.
  Matrix a = x;
  std::vector<double> rhs = y;

  double max_diag = 0.0;
  std::vector<double> diag(n, 0.0);

  for (size_t k = 0; k < n; ++k) {
    // Compute the norm of column k below (and including) row k.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    diag[k] = norm;
    max_diag = std::max(max_diag, norm);
    if (norm == 0.0) continue;  // zero column; handled by rank check below

    // Householder vector v = x_k + sign(x_kk) * ||x_k|| e_k.
    const double alpha = (a(k, k) >= 0.0) ? -norm : norm;
    std::vector<double> v(m - k);
    v[0] = a(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) v[i - k] = a(i, k);
    double vnorm2 = 0.0;
    for (double vi : v) vnorm2 += vi * vi;
    a(k, k) = alpha;
    for (size_t i = k + 1; i < m; ++i) a(i, k) = 0.0;
    if (vnorm2 <= 1e-300) continue;

    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and rhs.
    for (size_t j = k + 1; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i - k] * a(i, j);
      const double scale = 2.0 * dot / vnorm2;
      for (size_t i = k; i < m; ++i) a(i, j) -= scale * v[i - k];
    }
    double dot = 0.0;
    for (size_t i = k; i < m; ++i) dot += v[i - k] * rhs[i];
    const double scale = 2.0 * dot / vnorm2;
    for (size_t i = k; i < m; ++i) rhs[i] -= scale * v[i - k];
  }

  QrState out;
  out.r = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) out.r(i, j) = a(i, j);
  }
  out.qty.assign(rhs.begin(), rhs.begin() + static_cast<long>(n));
  // Rank check: any diagonal of R tiny relative to the largest column norm.
  for (size_t k = 0; k < n; ++k) {
    if (std::fabs(out.r(k, k)) < 1e-10 * std::max(1.0, max_diag)) {
      out.rank_deficient = true;
    }
  }
  return out;
}

}  // namespace

std::optional<std::vector<double>> CholeskySolve(const Matrix& a,
                                                 const std::vector<double>& b) {
  const size_t n = a.rows();
  MSCM_CHECK(a.cols() == n && b.size() == n);
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) return std::nullopt;
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Forward solve L z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l(i, k) * z[k];
    z[i] = sum / l(i, i);
  }
  // Back solve L^T x = z.
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

std::optional<Matrix> SpdInverse(const Matrix& a) {
  const size_t n = a.rows();
  MSCM_CHECK(a.cols() == n);
  Matrix inv(n, n);
  for (size_t c = 0; c < n; ++c) {
    std::vector<double> e(n, 0.0);
    e[c] = 1.0;
    auto col = CholeskySolve(a, e);
    if (!col.has_value()) return std::nullopt;
    for (size_t r = 0; r < n; ++r) inv(r, c) = (*col)[r];
  }
  return inv;
}

LeastSquaresResult SolveLeastSquares(const Matrix& x,
                                     const std::vector<double>& y) {
  const size_t n = x.cols();
  QrState qr = HouseholderQr(x, y);

  LeastSquaresResult out;
  out.rank_deficient = qr.rank_deficient;

  if (qr.rank_deficient) {
    // Fall back to ridge-regularized normal equations so callers always get
    // usable coefficients (the paper's procedures screen such models out via
    // VIF and merging, but the solver must not crash mid-search).
    Matrix xt = x.Transpose();
    Matrix xtx = xt * x;
    double trace = 0.0;
    for (size_t i = 0; i < n; ++i) trace += xtx(i, i);
    const double ridge = 1e-8 * std::max(1.0, trace / static_cast<double>(n));
    for (size_t i = 0; i < n; ++i) xtx(i, i) += ridge;
    std::vector<double> xty = xt * y;
    auto beta = CholeskySolve(xtx, xty);
    MSCM_CHECK(beta.has_value());
    out.coefficients = *beta;
    auto inv = SpdInverse(xtx);
    MSCM_CHECK(inv.has_value());
    out.xtx_inverse = *inv;
    out.xtx_inverse_diagonal.resize(n);
    for (size_t i = 0; i < n; ++i) out.xtx_inverse_diagonal[i] = (*inv)(i, i);
    return out;
  }

  // Back-substitute R beta = Q^T y.
  out.coefficients.assign(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = qr.qty[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= qr.r(ii, k) * out.coefficients[k];
    out.coefficients[ii] = sum / qr.r(ii, ii);
  }

  // (X^T X)^{-1} = R^{-1} R^{-T}; compute diagonal via columns of R^{-1}.
  // Solve R z = e_i for each i; diagonal entry i of (X^T X)^{-1} is
  // sum over rows of R^{-T} — more directly: row i of R^{-1} dotted with
  // itself, where R^{-1} rows come from solving R^T w = e_i. We compute
  // R^{-1} explicitly (n is small).
  Matrix rinv(n, n);
  for (size_t c = 0; c < n; ++c) {
    std::vector<double> e(n, 0.0);
    e[c] = 1.0;
    std::vector<double> z(n, 0.0);
    for (size_t ii = n; ii-- > 0;) {
      double sum = e[ii];
      for (size_t k = ii + 1; k < n; ++k) sum -= qr.r(ii, k) * z[k];
      z[ii] = sum / qr.r(ii, ii);
    }
    for (size_t r = 0; r < n; ++r) rinv(r, c) = z[r];
  }
  // (X^T X)^{-1} = R^{-1} R^{-T}.
  out.xtx_inverse = rinv * rinv.Transpose();
  out.xtx_inverse_diagonal.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    out.xtx_inverse_diagonal[i] = out.xtx_inverse(i, i);
  }
  return out;
}

}  // namespace mscm::stats
