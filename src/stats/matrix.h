// Dense double-precision matrix for the regression machinery.
//
// Deliberately small: the regression problems in this library are on the
// order of a few hundred observations by a few dozen design columns, so a
// straightforward row-major dense matrix with O(n^3) factorizations is both
// adequate and easy to audit.

#ifndef MSCM_STATS_MATRIX_H_
#define MSCM_STATS_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace mscm::stats {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Builds a matrix from nested initializer data (row major).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  // Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    MSCM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    MSCM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  // Raw storage access (row major), used by the factorization routines.
  const std::vector<double>& data() const { return data_; }

  Matrix Transpose() const;

  // Extracts column c as a vector.
  std::vector<double> Column(size_t c) const;

  // Returns a copy with the given column removed.
  Matrix WithoutColumn(size_t c) const;

  // Appends `col` as a new rightmost column; its size must equal rows().
  void AppendColumn(const std::vector<double>& col);

  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend std::vector<double> operator*(const Matrix& a,
                                       const std::vector<double>& x);
  friend Matrix operator+(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);

  bool AlmostEqual(const Matrix& other, double tol = 1e-9) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace mscm::stats

#endif  // MSCM_STATS_MATRIX_H_
