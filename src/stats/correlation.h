// Pearson correlation — the "simple correlation coefficient" used by the
// paper's mixed backward/forward variable-selection procedure (§4.2).

#ifndef MSCM_STATS_CORRELATION_H_
#define MSCM_STATS_CORRELATION_H_

#include <vector>

namespace mscm::stats {

// Pearson product-moment correlation of two equal-length samples.
// Returns 0 when either sample has (numerically) zero variance — a variable
// that does not vary carries no linear information, which is exactly how the
// selection procedure treats it.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace mscm::stats

#endif  // MSCM_STATS_CORRELATION_H_
