#include "stats/special_functions.h"

#include <cmath>

#include "common/check.h"

namespace mscm::stats {
namespace {

// Continued-fraction core of the incomplete beta (Lentz's method).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  MSCM_CHECK(x > 0.0);
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,  12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double acc = kCoef[0];
  for (int i = 1; i < 9; ++i) acc += kCoef[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(acc);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  MSCM_CHECK(a > 0.0 && b > 0.0);
  MSCM_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double Erf(double x) {
  // Abramowitz & Stegun 7.1.26 rational approximation.
  const double sign = x < 0.0 ? -1.0 : 1.0;
  const double ax = std::fabs(x);
  const double t = 1.0 / (1.0 + 0.3275911 * ax);
  const double y =
      1.0 - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t -
              0.284496736) *
                 t +
             0.254829592) *
                t * std::exp(-ax * ax);
  return sign * y;
}

double NormalCdf(double z) { return 0.5 * (1.0 + Erf(z / std::sqrt(2.0))); }

}  // namespace mscm::stats
