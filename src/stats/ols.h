// Ordinary least squares with the validation statistics the paper relies on:
// coefficient of total determination (R^2), standard error of estimation
// (SEE, paper Eq. 3), the overall F test, per-coefficient t statistics, and
// variance inflation factors for multicollinearity screening (§4.3).

#ifndef MSCM_STATS_OLS_H_
#define MSCM_STATS_OLS_H_

#include <cstddef>
#include <vector>

#include "stats/matrix.h"

namespace mscm::stats {

struct OlsResult {
  // One coefficient per design-matrix column.
  std::vector<double> coefficients;
  std::vector<double> standard_errors;
  std::vector<double> t_statistics;

  std::vector<double> fitted;
  std::vector<double> residuals;

  size_t n = 0;  // observations
  size_t p = 0;  // design columns (including any intercept-style columns)

  double sse = 0.0;  // residual sum of squares
  double sst = 0.0;  // total sum of squares about the mean of y

  // Coefficient of total determination.
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;

  // Standard error of estimation: sqrt(SSE / (n - p)). With a single
  // intercept column among the p, this equals the paper's
  // sqrt(SSE / (n - m - 1)) for m explanatory variables.
  double standard_error = 0.0;

  // Overall regression F statistic with (p - 1, n - p) degrees of freedom
  // and its p-value. Zero/one when not computable (p < 2 or n <= p).
  double f_statistic = 0.0;
  double f_pvalue = 1.0;

  bool rank_deficient = false;

  // (X^T X)^{-1} from the fit; empty when the result was reconstructed from
  // a persisted record (intervals are then unavailable).
  Matrix xtx_inverse;

  // Prediction for a new design row (same column layout as the fit).
  double Predict(const std::vector<double>& design_row) const;

  // Standard error of a *new observation's* prediction at this design row:
  // s * sqrt(1 + x' (X'X)^{-1} x). Returns 0 when xtx_inverse is absent.
  double PredictionStandardError(const std::vector<double>& design_row) const;
};

// Fits y ≈ X beta. Requires X.rows() == y.size() and X.rows() >= X.cols().
OlsResult FitOls(const Matrix& x, const std::vector<double>& y);

// Variance inflation factor of design column `col`: 1 / (1 - R_j^2) where
// R_j^2 comes from regressing column j on all the other columns. Returns a
// large sentinel (1e12) when the column is an exact linear combination of
// the others.
double VarianceInflationFactor(const Matrix& x, size_t col);

}  // namespace mscm::stats

#endif  // MSCM_STATS_OLS_H_
