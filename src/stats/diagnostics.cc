#include "stats/diagnostics.h"

#include <cmath>

#include "common/check.h"

namespace mscm::stats {

std::vector<double> StandardizedResiduals(const OlsResult& fit) {
  std::vector<double> out;
  out.reserve(fit.residuals.size());
  const double s = fit.standard_error;
  for (double r : fit.residuals) {
    out.push_back(s > 1e-300 ? r / s : 0.0);
  }
  return out;
}

std::vector<size_t> FlagOutliers(const std::vector<double>& standardized,
                                 double threshold) {
  MSCM_CHECK(threshold > 0.0);
  std::vector<size_t> out;
  for (size_t i = 0; i < standardized.size(); ++i) {
    if (std::fabs(standardized[i]) > threshold) out.push_back(i);
  }
  return out;
}

double DurbinWatson(const std::vector<double>& residuals) {
  if (residuals.size() < 2) return 2.0;
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < residuals.size(); ++i) {
    den += residuals[i] * residuals[i];
    if (i > 0) {
      const double d = residuals[i] - residuals[i - 1];
      num += d * d;
    }
  }
  return den > 1e-300 ? num / den : 2.0;
}

NormalityReport TestNormality(const std::vector<double>& residuals) {
  NormalityReport report;
  const size_t n = residuals.size();
  if (n < 4) return report;

  double mean = 0.0;
  for (double r : residuals) mean += r;
  mean /= static_cast<double>(n);

  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  for (double r : residuals) {
    const double d = r - mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  if (m2 < 1e-300) return report;

  report.skewness = m3 / std::pow(m2, 1.5);
  report.excess_kurtosis = m4 / (m2 * m2) - 3.0;
  report.jarque_bera =
      static_cast<double>(n) / 6.0 *
      (report.skewness * report.skewness +
       0.25 * report.excess_kurtosis * report.excess_kurtosis);
  // Chi-squared with 2 dof: survival = exp(-x/2).
  report.p_value = std::exp(-0.5 * report.jarque_bera);
  return report;
}

}  // namespace mscm::stats
