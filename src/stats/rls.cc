#include "stats/rls.h"

#include <cmath>

#include "common/check.h"

namespace mscm::stats {

namespace {

bool AllFinite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

RlsEstimator::RlsEstimator(size_t dim, const RlsConfig& config)
    : config_(config),
      dim_(dim),
      theta_(dim, 0.0),
      p_(dim * dim, 0.0),
      gain_(dim, 0.0) {
  MSCM_CHECK_MSG(dim > 0, "RLS estimator needs at least one coefficient");
  MSCM_CHECK_MSG(config_.forgetting > 0.0 && config_.forgetting <= 1.0,
                 "RLS forgetting factor must lie in (0, 1]");
  MSCM_CHECK_MSG(config_.initial_variance > 0.0,
                 "RLS prior variance must be positive");
  for (size_t i = 0; i < dim_; ++i) {
    p_[i * dim_ + i] = config_.initial_variance;
  }
}

RlsEstimator::RlsEstimator(std::vector<double> theta,
                           std::vector<double> covariance,
                           const RlsConfig& config)
    : RlsEstimator(theta.size(), config) {
  MSCM_CHECK_MSG(covariance.empty() || covariance.size() == dim_ * dim_,
                 "RLS warm-start covariance must be dim x dim or empty");
  theta_ = std::move(theta);
  if (!covariance.empty()) {
    p_ = std::move(covariance);
    // A persisted covariance may have been hand-edited; symmetrize once and
    // run the same health check Update applies, so a hostile warm start
    // latches blown_up() instead of corrupting the trajectory.
    for (size_t i = 0; i < dim_; ++i) {
      for (size_t j = i + 1; j < dim_; ++j) {
        double s = 0.5 * (p_[i * dim_ + j] + p_[j * dim_ + i]);
        p_[i * dim_ + j] = s;
        p_[j * dim_ + i] = s;
      }
    }
  }
  CheckHealth();
}

bool RlsEstimator::Update(const double* z, double y) {
  return UpdateWeighted(z, y, 1.0);
}

bool RlsEstimator::UpdateWeighted(const double* z, double y, double weight) {
  if (blown_up_) {
    ++updates_skipped_;
    return false;
  }
  if (!std::isfinite(y) || !std::isfinite(weight) || !(weight > 0.0)) {
    ++updates_skipped_;
    return false;
  }
  for (size_t i = 0; i < dim_; ++i) {
    if (!std::isfinite(z[i])) {
      ++updates_skipped_;
      return false;
    }
  }

  // Sherman–Morrison on the weighted information update Φ ← λΦ + w·zz':
  // g = P z (symmetric P, so row dot is fine), d = λ/w + z'g. weight = 1
  // recovers the unit-weight derivation in the header comment.
  double d = config_.forgetting / weight;
  for (size_t i = 0; i < dim_; ++i) {
    double g = 0.0;
    const double* row = &p_[i * dim_];
    for (size_t j = 0; j < dim_; ++j) g += row[j] * z[j];
    gain_[i] = g;
    d += z[i] * g;
  }
  if (!(d > config_.min_gain_denominator) || !std::isfinite(d)) {
    ++updates_skipped_;
    return false;
  }

  // θ ← θ + (g/d) (y − z'θ)
  double innovation = y;
  for (size_t i = 0; i < dim_; ++i) innovation -= z[i] * theta_[i];
  for (size_t i = 0; i < dim_; ++i) theta_[i] += (gain_[i] / d) * innovation;

  // P ← (P − g g' / d) / λ, then symmetrize. Building from the symmetric
  // closed form (g g' is symmetric) keeps the explicit re-symmetrization a
  // cheap average rather than a correctness crutch.
  const double inv_lambda = 1.0 / config_.forgetting;
  for (size_t i = 0; i < dim_; ++i) {
    for (size_t j = i; j < dim_; ++j) {
      double v = (p_[i * dim_ + j] - gain_[i] * gain_[j] / d) * inv_lambda;
      p_[i * dim_ + j] = v;
      p_[j * dim_ + i] = v;
    }
  }

  ++updates_;
  CheckHealth();
  return !blown_up_;
}

double RlsEstimator::Predict(const double* z) const {
  double y = 0.0;
  for (size_t i = 0; i < dim_; ++i) y += z[i] * theta_[i];
  return y;
}

double RlsEstimator::PredictionError(const double* z, double y) const {
  return y - Predict(z);
}

double RlsEstimator::trace() const {
  double t = 0.0;
  for (size_t i = 0; i < dim_; ++i) t += p_[i * dim_ + i];
  return t;
}

void RlsEstimator::CheckHealth() {
  if (blown_up_) return;
  if (!AllFinite(theta_) || !AllFinite(p_)) {
    blown_up_ = true;
    return;
  }
  if (trace() > config_.covariance_trace_limit) {
    blown_up_ = true;
  }
}

}  // namespace mscm::stats
