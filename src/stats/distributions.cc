#include "stats/distributions.h"

#include <cmath>

#include "common/check.h"
#include "stats/special_functions.h"

namespace mscm::stats {

double FCdf(double f, double d1, double d2) {
  MSCM_CHECK(d1 > 0.0 && d2 > 0.0);
  if (f <= 0.0) return 0.0;
  const double x = d1 * f / (d1 * f + d2);
  return RegularizedIncompleteBeta(d1 / 2.0, d2 / 2.0, x);
}

double FSurvival(double f, double d1, double d2) {
  if (f <= 0.0) return 1.0;
  const double x = d2 / (d2 + d1 * f);
  return RegularizedIncompleteBeta(d2 / 2.0, d1 / 2.0, x);
}

double StudentTCdf(double t, double df) {
  MSCM_CHECK(df > 0.0);
  const double x = df / (df + t * t);
  const double half_tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - half_tail : half_tail;
}

double StudentTTwoSidedPValue(double t, double df) {
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

double StudentTUpperQuantile(double alpha, double df) {
  MSCM_CHECK(alpha > 0.0 && alpha < 1.0);
  double lo = 0.0;
  double hi = 1.0;
  while (1.0 - StudentTCdf(hi, df) > alpha) {
    hi *= 2.0;
    if (hi > 1e12) break;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (1.0 - StudentTCdf(mid, df) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double FUpperQuantile(double alpha, double d1, double d2) {
  MSCM_CHECK(alpha > 0.0 && alpha < 1.0);
  double lo = 0.0;
  double hi = 1.0;
  // Expand until the survival drops below alpha.
  while (FSurvival(hi, d1, d2) > alpha) {
    hi *= 2.0;
    if (hi > 1e12) break;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (FSurvival(mid, d1, d2) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace mscm::stats
