#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mscm::stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Min(const std::vector<double>& xs) {
  MSCM_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  MSCM_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double Quantile(std::vector<double> xs, double q) {
  MSCM_CHECK(!xs.empty());
  MSCM_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double Median(const std::vector<double>& xs) { return Quantile(xs, 0.5); }

Summary Summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = Mean(xs);
  s.stddev = StdDev(xs);
  s.min = Min(xs);
  s.max = Max(xs);
  s.median = Median(xs);
  return s;
}

double Histogram::BinWidth() const {
  if (counts.empty()) return 0.0;
  return (hi - lo) / static_cast<double>(counts.size());
}

double Histogram::BinCenter(size_t i) const {
  MSCM_CHECK(i < counts.size());
  return lo + (static_cast<double>(i) + 0.5) * BinWidth();
}

Histogram BuildHistogram(const std::vector<double>& xs, double lo, double hi,
                         size_t bins) {
  MSCM_CHECK(bins > 0);
  MSCM_CHECK(hi > lo);
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    long idx = static_cast<long>(std::floor((x - lo) / width));
    if (idx < 0) idx = 0;
    if (idx >= static_cast<long>(bins)) idx = static_cast<long>(bins) - 1;
    ++h.counts[static_cast<size_t>(idx)];
  }
  return h;
}

}  // namespace mscm::stats
