#include "stats/correlation.h"

#include <cmath>

#include "common/check.h"

namespace mscm::stats {

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  MSCM_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 1e-300 || syy <= 1e-300) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace mscm::stats
