// Recursive least squares with exponential forgetting — the fast tier of
// the two-tier model adaptation pipeline (ROADMAP: "Incremental model
// adaptation instead of full re-derivation").
//
// Each estimator tracks one linear equation y ≈ z'θ (for us: one contention
// state's compiled coefficient row, z = (1, gathered selected features))
// and folds each observed (z, y) pair in as a rank-1 Sherman–Morrison
// update of the inverse Gram matrix P ≈ (X'X)⁻¹:
//
//   g = P z
//   d = λ + z' g                 (gain denominator)
//   k = g / d                    (Kalman-style gain)
//   θ ← θ + k (y − z'θ)
//   P ← (P − k g') / λ,  then  P ← (P + P') / 2   (symmetrize)
//
// λ ∈ (0, 1] is the forgetting factor: λ = 1 recovers growing-window least
// squares (the λ=1 trajectory matches a batch OLS refit over the same
// window up to floating-point reassociation — tests/rls_test.cc pins the
// differential), λ < 1 downweights old observations with effective memory
// ≈ 1/(1−λ), which is what lets the updater track coefficient drift.
//
// Numerical guards, in the order they bite:
//   - a gain denominator under `min_gain_denominator` skips the update
//     (returned as false and counted) instead of dividing by ~0;
//   - P is re-symmetrized after every update so the Sherman–Morrison
//     asymmetry cannot accumulate;
//   - non-finite θ/P entries or trace(P) above `covariance_trace_limit`
//     latch blown_up(), the signal the runtime AdaptationController uses
//     to escalate to the slow full-re-derivation path. With λ < 1 and a
//     persistently non-exciting regressor stream, P grows like 1/λ per
//     step (covariance wind-up) — the trace limit turns that failure mode
//     into an explicit escalation instead of a silent overflow.
//
// Instances are plain values: no locking, single-writer by construction
// (the runtime drains per-thread feedback buffers into per-(site, class,
// state) accumulators from one drain thread).

#ifndef MSCM_STATS_RLS_H_
#define MSCM_STATS_RLS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mscm::stats {

struct RlsConfig {
  // Forgetting factor λ ∈ (0, 1]. 1 = infinite memory (matches batch OLS on
  // the same window); < 1 tracks drift with effective memory ≈ 1/(1−λ).
  double forgetting = 0.995;
  // Prior covariance: P0 = I · initial_variance. Large = diffuse prior (the
  // first dim updates mostly overwrite θ); small = trust the warm start.
  double initial_variance = 1e4;
  // Updates whose gain denominator λ + z'Pz falls below this are skipped
  // (counted in updates_skipped) rather than divided through.
  double min_gain_denominator = 1e-12;
  // trace(P) above this latches blown_up() — covariance wind-up, the
  // escalate-to-slow-path signal.
  double covariance_trace_limit = 1e12;
};

class RlsEstimator {
 public:
  // Fresh estimator: θ = 0, P = I · initial_variance.
  explicit RlsEstimator(size_t dim, const RlsConfig& config = RlsConfig());

  // Warm start from persisted or model-derived state. `theta` has size dim;
  // `covariance` is dim x dim row-major (empty = diffuse prior P0).
  RlsEstimator(std::vector<double> theta, std::vector<double> covariance,
               const RlsConfig& config);

  // Folds in one observation y ≈ z'θ; `z` has size dim(). Returns false
  // when the update was skipped by a guard (near-zero gain denominator,
  // non-finite inputs, or an already blown-up estimator).
  bool Update(const double* z, double y);

  // Weighted variant: folds the observation in with relative weight
  // `weight` ∈ (0, 1] — equivalent to observation noise variance 1/weight,
  // i.e. the information-form update Φ ← λΦ + w·zz'. weight = 1 is exactly
  // Update(); weight → 0 leaves the estimator untouched. Non-finite or
  // non-positive weights are skipped (counted). The adaptation tier uses
  // this to down-weight feedback stamped with a superseded model
  // generation instead of folding stragglers in at full strength.
  bool UpdateWeighted(const double* z, double y, double weight);

  // Residual y − z'θ under the *current* coefficients (the innovation the
  // next Update would correct). Used for EWMA error tracking without
  // re-deriving anything.
  double PredictionError(const double* z, double y) const;

  double Predict(const double* z) const;

  size_t dim() const { return dim_; }
  const std::vector<double>& coefficients() const { return theta_; }
  // Row-major dim x dim inverse-Gram estimate P ≈ (X'X)⁻¹.
  const std::vector<double>& covariance() const { return p_; }
  double trace() const;

  uint64_t updates() const { return updates_; }
  uint64_t updates_skipped() const { return updates_skipped_; }

  // Latched when θ/P go non-finite or trace(P) exceeds the configured
  // limit; once set, further updates are skipped (the caller escalates).
  bool blown_up() const { return blown_up_; }

  const RlsConfig& config() const { return config_; }

 private:
  void CheckHealth();

  RlsConfig config_;
  size_t dim_;
  std::vector<double> theta_;  // dim
  std::vector<double> p_;      // dim x dim, row-major, symmetric
  std::vector<double> gain_;   // scratch: P z
  uint64_t updates_ = 0;
  uint64_t updates_skipped_ = 0;
  bool blown_up_ = false;
};

}  // namespace mscm::stats

#endif  // MSCM_STATS_RLS_H_
