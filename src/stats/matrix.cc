#include "stats/matrix.h"

#include <cmath>

namespace mscm::stats {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    MSCM_CHECK_MSG(rows[r].size() == m.cols_, "ragged row data");
    for (size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

std::vector<double> Matrix::Column(size_t c) const {
  MSCM_CHECK(c < cols_);
  std::vector<double> col(rows_);
  for (size_t r = 0; r < rows_; ++r) col[r] = (*this)(r, c);
  return col;
}

Matrix Matrix::WithoutColumn(size_t drop) const {
  MSCM_CHECK(drop < cols_);
  Matrix m(rows_, cols_ - 1);
  for (size_t r = 0; r < rows_; ++r) {
    size_t out = 0;
    for (size_t c = 0; c < cols_; ++c) {
      if (c == drop) continue;
      m(r, out++) = (*this)(r, c);
    }
  }
  return m;
}

void Matrix::AppendColumn(const std::vector<double>& col) {
  if (rows_ == 0 && cols_ == 0) {
    rows_ = col.size();
  }
  MSCM_CHECK_MSG(col.size() == rows_, "column length mismatch");
  std::vector<double> next(rows_ * (cols_ + 1));
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) next[r * (cols_ + 1) + c] = (*this)(r, c);
    next[r * (cols_ + 1) + cols_] = col[r];
  }
  data_ = std::move(next);
  ++cols_;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  MSCM_CHECK_MSG(a.cols_ == b.rows_, "matrix product shape mismatch");
  Matrix out(a.rows_, b.cols_);
  for (size_t i = 0; i < a.rows_; ++i) {
    for (size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols_; ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

std::vector<double> operator*(const Matrix& a, const std::vector<double>& x) {
  MSCM_CHECK_MSG(a.cols_ == x.size(), "matrix-vector shape mismatch");
  std::vector<double> out(a.rows_, 0.0);
  for (size_t i = 0; i < a.rows_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < a.cols_; ++j) acc += a(i, j) * x[j];
    out[i] = acc;
  }
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  MSCM_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  Matrix out(a.rows_, a.cols_);
  for (size_t i = 0; i < a.data_.size(); ++i) out.data_[i] = a.data_[i] + b.data_[i];
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  MSCM_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  Matrix out(a.rows_, a.cols_);
  for (size_t i = 0; i < a.data_.size(); ++i) out.data_[i] = a.data_[i] - b.data_[i];
  return out;
}

bool Matrix::AlmostEqual(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace mscm::stats
