#include "net/loadgen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/rng.h"
#include "common/str_util.h"
#include "core/explanatory.h"
#include "net/client.h"

namespace mscm::net {

namespace {

using SteadyClock = std::chrono::steady_clock;

struct WorkerTally {
  uint64_t completed = 0;
  uint64_t items = 0;
  uint64_t placements_chosen = 0;
  uint64_t overloaded = 0;
  uint64_t error_frames = 0;
  uint64_t transport_errors = 0;
  uint64_t behind_schedule = 0;
  uint64_t feedback_accepted = 0;
  uint64_t feedback_rejected = 0;
  std::vector<double> latencies_us;
};

// The ground-truth cost law of mscm_served's synthetic federation (see
// served_runtime.cc MakeModel), scaled by the drift factor. Reporting this
// instead of a perturbed estimate keeps the feedback target fixed while the
// server's coefficients move underneath it.
double GroundTruthCost(const runtime::EstimateRequest& request, int state,
                       double drift_scale) {
  double base = 0.0;
  const double w[3] = {0.5, 0.2, 0.1};
  for (size_t j = 0; j < 3 && j < request.features.size(); ++j) {
    base += w[j] * request.features[j];
  }
  return drift_scale * (static_cast<double>(state) + 1.0) * base;
}

// One connection's driving loop (closed or open discipline).
void DriveConnection(const LoadGenConfig& config, size_t worker_index,
                     SteadyClock::time_point start,
                     SteadyClock::time_point stop_at, WorkerTally& tally) {
  NetClient client;
  if (!client.Connect(config.host, config.port)) {
    ++tally.transport_errors;
    return;
  }

  // Open loop: this connection owns every config.connections-th slot of the
  // aggregate schedule.
  const double per_conn_rate =
      config.target_rate / std::max(1, config.connections);
  const auto interval =
      config.mode == LoadGenConfig::Mode::kOpen && per_conn_rate > 0.0
          ? std::chrono::nanoseconds(
                static_cast<int64_t>(1e9 / per_conn_rate))
          : std::chrono::nanoseconds(0);
  auto next_send = start + interval * static_cast<int64_t>(worker_index) /
                               std::max(1, config.connections);

  size_t cursor = worker_index;  // de-phase the workload across connections
  Rng rng(0x9e3779b97f4a7c15ull ^ worker_index);  // feedback noise
  std::vector<runtime::EstimateRequest> batch;
  while (SteadyClock::now() < stop_at) {
    if (config.mode == LoadGenConfig::Mode::kOpen) {
      const auto now = SteadyClock::now();
      if (now < next_send) {
        std::this_thread::sleep_until(std::min(next_send, stop_at));
        if (SteadyClock::now() >= stop_at) break;
      } else if (now > next_send + interval) {
        ++tally.behind_schedule;  // coordinated-omission tell
      }
      next_send += interval;
    }

    RpcStatus status;
    size_t items = 0;
    bool placement_chosen = false;
    const auto sent_at = SteadyClock::now();
    if (config.placement_candidates > 0) {
      // Placement traffic: one frame prices placement_candidates candidate
      // sites under the configured ranking policy. Shipping costs vary
      // deterministically per candidate so ties are rare but reproducible.
      std::vector<runtime::PlacementCandidate> candidates;
      candidates.reserve(config.placement_candidates);
      for (size_t i = 0; i < config.placement_candidates; ++i) {
        runtime::PlacementCandidate candidate;
        candidate.request = config.workload[cursor % config.workload.size()];
        candidate.shipping_seconds =
            1e-4 * static_cast<double>((cursor + i) % 7);
        candidates.push_back(std::move(candidate));
        ++cursor;
      }
      runtime::PlacementOptions options;
      options.ranking.policy = config.placement_policy;
      options.ranking.risk_lambda = config.placement_risk_lambda;
      runtime::PlacementResult placement;
      status = client.ChoosePlacement(candidates, options, &placement);
      items = placement.responses.size();
      placement_chosen = status.ok() && placement.chosen >= 0;
    } else if (config.batch_size <= 1) {
      const runtime::EstimateRequest& request =
          config.workload[cursor % config.workload.size()];
      runtime::EstimateResponse response;
      status = client.Estimate(request, &response);
      items = 1;
      ++cursor;
      if (config.feedback && status.ok() && response.ok()) {
        const double elapsed =
            std::chrono::duration<double>(SteadyClock::now() - start).count();
        runtime::FeedbackReport report;
        report.site = request.site;
        report.class_id = request.class_id;
        report.features = request.features;
        report.probing_cost = response.probing_cost;
        report.model_generation = response.model_generation;
        double truth = GroundTruthCost(
            request, response.state,
            1.0 + config.feedback_drift * std::max(0.0, elapsed));
        if (config.feedback_noise > 0.0) {
          truth *= 1.0 + rng.Gaussian(0.0, config.feedback_noise);
        }
        report.actual_cost = std::max(truth, 1e-9);
        bool accepted = false;
        if (client.ReportActual(report, &accepted).ok()) {
          accepted ? ++tally.feedback_accepted : ++tally.feedback_rejected;
        } else {
          ++tally.transport_errors;
        }
      }
    } else {
      batch.clear();
      for (size_t i = 0; i < config.batch_size; ++i) {
        batch.push_back(config.workload[cursor % config.workload.size()]);
        ++cursor;
      }
      std::vector<runtime::EstimateResponse> responses;
      status = client.EstimateBatch(batch, &responses);
      items = responses.size();
    }
    const double us = std::chrono::duration<double, std::micro>(
                          SteadyClock::now() - sent_at)
                          .count();

    if (status.ok()) {
      ++tally.completed;
      tally.items += items;
      if (placement_chosen) ++tally.placements_chosen;
      tally.latencies_us.push_back(us);
    } else if (status.overloaded()) {
      ++tally.overloaded;
    } else if (status.code == RpcStatus::Code::kErrorFrame) {
      ++tally.error_frames;
    } else {
      ++tally.transport_errors;
      // The connection died (server restart, drain, timeout): try once to
      // come back rather than idling for the rest of the run.
      if (!client.Connect(config.host, config.port)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }

    if (config.mode == LoadGenConfig::Mode::kClosed &&
        config.think_time.count() > 0) {
      std::this_thread::sleep_for(config.think_time);
    }
  }
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

std::string LoadGenResult::ToString() const {
  std::string s = Format(
      "completed=%llu (%.0f/s, %.0f items/s) placements_chosen=%llu "
      "overloaded=%llu errors=%llu "
      "transport=%llu behind=%llu latency{p50=%.1fus p90=%.1fus p99=%.1fus "
      "mean=%.1fus max=%.1fus}",
      static_cast<unsigned long long>(completed), qps, items_per_sec,
      static_cast<unsigned long long>(placements_chosen),
      static_cast<unsigned long long>(overloaded),
      static_cast<unsigned long long>(error_frames),
      static_cast<unsigned long long>(transport_errors),
      static_cast<unsigned long long>(behind_schedule), p50_us, p90_us,
      p99_us, mean_us, max_us);
  if (feedback_accepted > 0 || feedback_rejected > 0) {
    s += Format(" feedback{accepted=%llu rejected=%llu}",
                static_cast<unsigned long long>(feedback_accepted),
                static_cast<unsigned long long>(feedback_rejected));
  }
  return s;
}

LoadGenResult RunLoadGen(const LoadGenConfig& config) {
  LoadGenResult result;
  if (config.workload.empty() || config.connections <= 0) return result;

  const int n = config.connections;
  std::vector<WorkerTally> tallies(static_cast<size_t>(n));
  const auto start = SteadyClock::now();
  const auto stop_at = start + config.duration;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers.emplace_back([&config, i, start, stop_at, &tallies] {
      DriveConnection(config, static_cast<size_t>(i), start, stop_at,
                      tallies[static_cast<size_t>(i)]);
    });
  }
  for (auto& w : workers) w.join();
  result.seconds =
      std::chrono::duration<double>(SteadyClock::now() - start).count();

  std::vector<double> latencies;
  for (const WorkerTally& t : tallies) {
    result.completed += t.completed;
    result.items += t.items;
    result.placements_chosen += t.placements_chosen;
    result.overloaded += t.overloaded;
    result.error_frames += t.error_frames;
    result.transport_errors += t.transport_errors;
    result.behind_schedule += t.behind_schedule;
    result.feedback_accepted += t.feedback_accepted;
    result.feedback_rejected += t.feedback_rejected;
    latencies.insert(latencies.end(), t.latencies_us.begin(),
                     t.latencies_us.end());
  }
  if (result.seconds > 0.0) {
    result.qps = static_cast<double>(result.completed) / result.seconds;
    result.items_per_sec = static_cast<double>(result.items) / result.seconds;
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    result.p50_us = Percentile(latencies, 0.50);
    result.p90_us = Percentile(latencies, 0.90);
    result.p99_us = Percentile(latencies, 0.99);
    result.max_us = latencies.back();
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    result.mean_us = sum / static_cast<double>(latencies.size());
  }
  return result;
}

std::vector<runtime::EstimateRequest> MakeUniformWorkload(size_t n_requests,
                                                          size_t n_sites,
                                                          uint64_t seed) {
  const std::vector<core::QueryClassId> classes = {
      core::QueryClassId::kUnarySeqScan, core::QueryClassId::kJoinNoIndex};
  Rng rng(seed);
  std::vector<runtime::EstimateRequest> requests;
  requests.reserve(n_requests);
  for (size_t i = 0; i < n_requests; ++i) {
    runtime::EstimateRequest request;
    request.site = "site" + std::to_string(i % std::max<size_t>(1, n_sites));
    request.class_id = classes[(i / std::max<size_t>(1, n_sites)) % 2];
    request.features.assign(
        core::VariableSet::ForClass(request.class_id).size(), 0.0);
    for (size_t j = 0; j < 3 && j < request.features.size(); ++j) {
      request.features[j] = rng.Uniform(1.0, 10.0);
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace mscm::net
