// Compact, wire-stable serialization of RuntimeStatsSnapshot for the
// StatsResponse frame.
//
// The encoding is self-describing key/value, not positional: each entry is
// (key string, type tag, 8-byte value). New counters can be appended server
// side without breaking old clients (unknown keys are simply extra entries),
// and old servers without breaking new clients (missing keys decode to
// zero). The key names come from runtime::StatsCounterFields() /
// StatsGaugeFields() / StatsHistogramFields() — the append-only contract
// lives there, next to the struct.
//
// Histograms flatten to scalar sub-keys: "<name>.count" (u64) and
// "<name>.mean_s" / ".p50_s" / ".p90_s" / ".p99_s" / ".max_s" (f64).

#ifndef MSCM_NET_STATS_CODEC_H_
#define MSCM_NET_STATS_CODEC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runtime/runtime_stats.h"

namespace mscm::net {

// A decoded stats payload: every entry by key, typed. Unknown keys are
// preserved so `mscm_loadgen --stats` prints whatever the server sends.
struct WireStats {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;

  std::string ToString() const;
};

// `extra_counters` lets a serving layer append its own keys (the server
// adds "net.*" wire counters); they decode like any other entry.
std::vector<uint8_t> EncodeStats(
    const runtime::RuntimeStatsSnapshot& snap,
    const std::map<std::string, uint64_t>& extra_counters = {});

// nullopt on any structural violation (truncation, oversized key, unknown
// type tag, entry count past kMaxStatsEntries, trailing bytes).
std::optional<WireStats> DecodeStatsPayload(
    const std::vector<uint8_t>& payload);

// Rebuilds a snapshot from decoded entries (missing keys stay zero).
// EncodeStats → DecodeStatsPayload → ToSnapshot round-trips every scalar
// field bit-for-bit.
runtime::RuntimeStatsSnapshot ToSnapshot(const WireStats& stats);

}  // namespace mscm::net

#endif  // MSCM_NET_STATS_CODEC_H_
