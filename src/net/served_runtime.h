// The full serving stack in one object: an EstimationService with a
// synthetic multi-site federation (derived cost models + probed contention
// per site), a ModelRefreshDaemon watching every (site, class) key, and an
// EstimateServer fronting it all — what the mscm_served binary runs and
// what the shutdown regression tests tear down.
//
// The reason this class exists is the teardown *ordering*, which is easy to
// get wrong and deadlocks or drops work when you do:
//
//   1. server.Stop()        — stop admitting, drain dispatched requests,
//                             flush responses. After this no task will ever
//                             touch the pool or the service again — and no
//                             worker can feed the adaptation controller.
//   2. adaptation stop      — the controller joins its drain thread after a
//                             final drain; that drain may still escalate
//                             into the refresh daemon, so it precedes 3.
//   3. daemon stop          — the refresh daemon's destructor blocks until
//                             in-flight re-derivations on the pool finish.
//   4. service.StopProbing()— background probers join; abandoned-probe
//                             deadlines guarantee this terminates.
//   5. service destruction  — the ThreadPool joins last, when nothing can
//                             submit to it anymore.
//
// Violating 1→2 lets a drained server's worker task race a dying daemon;
// violating 2→4 lets a refresh task run on a joined pool. Shutdown() is
// idempotent and safe to call from a signal-handling main loop.

#ifndef MSCM_NET_SERVED_RUNTIME_H_
#define MSCM_NET_SERVED_RUNTIME_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/observation_source.h"
#include "net/server.h"
#include "runtime/adaptation.h"
#include "runtime/estimation_service.h"
#include "runtime/model_refresh.h"

namespace mscm::net {

struct ServedRuntimeConfig {
  // Synthetic federation shape: sites "site0".."site{n-1}", each serving
  // the unary-scan and no-index-join classes with a fitted 4-state model.
  size_t sites = 4;
  uint64_t seed = 1;
  // EstimationService worker pool (shared by batch fan-out, refresh tasks,
  // and the server's request dispatch). < 0 = one per hardware thread.
  int worker_threads = 2;
  // Background probing cadence (zero disables the probers).
  std::chrono::nanoseconds probe_interval = std::chrono::milliseconds(50);
  bool refresh = true;  // run a ModelRefreshDaemon over every key
  // Run the two-tier adaptation loop: kReportActual frames feed an
  // AdaptationController (RLS fast tier) that escalates stalls to the
  // refresh daemon (full re-derivation slow tier).
  bool adaptation = true;
  runtime::AdaptationConfig adaptation_config;
  EstimateServerConfig server;
};

class ServedRuntime {
 public:
  explicit ServedRuntime(ServedRuntimeConfig config = {});
  ~ServedRuntime();  // Shutdown()

  ServedRuntime(const ServedRuntime&) = delete;
  ServedRuntime& operator=(const ServedRuntime&) = delete;

  // Builds the federation and starts the server. False on socket failure.
  bool Start(std::string* error = nullptr);

  // Ordered graceful shutdown (see header comment). Idempotent.
  void Shutdown();

  uint16_t port() const;
  runtime::EstimationService& service() { return *service_; }
  EstimateServer& server() { return *server_; }
  runtime::ModelRefreshDaemon* daemon() { return daemon_.get(); }
  runtime::AdaptationController* adaptation() { return adaptation_.get(); }

 private:
  const ServedRuntimeConfig config_;
  std::unique_ptr<runtime::EstimationService> service_;
  std::vector<std::unique_ptr<core::ObservationSource>> sources_;
  std::unique_ptr<runtime::ModelRefreshDaemon> daemon_;
  std::unique_ptr<runtime::AdaptationController> adaptation_;
  std::unique_ptr<EstimateServer> server_;
  bool shut_down_ = false;
};

}  // namespace mscm::net

#endif  // MSCM_NET_SERVED_RUNTIME_H_
