// Blocking request/response client for the estimation wire protocol: what a
// remote global query optimizer (or the load generator) links to speak to
// mscm_served. One socket, one outstanding request per call; request ids
// are verified against the response echo. All failures are values, never
// exceptions.

#ifndef MSCM_NET_CLIENT_H_
#define MSCM_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/stats_codec.h"
#include "net/wire_format.h"
#include "runtime/estimation_service.h"

namespace mscm::net {

struct NetClientConfig {
  // Receive deadline per call (SO_RCVTIMEO); zero = block forever.
  std::chrono::milliseconds recv_timeout{5000};
};

// The outcome of one RPC.
struct RpcStatus {
  enum class Code {
    kOk,
    kTransportError,  // connect/send/recv/close failure; connection dead
    kProtocolError,   // undecodable or mismatched response; connection dead
    kErrorFrame,      // server answered a typed error (wire_error says which)
  };

  Code code = Code::kOk;
  WireError wire_error = WireError::kNone;  // set for kErrorFrame
  std::string message;

  bool ok() const { return code == Code::kOk; }
  bool overloaded() const {
    return code == Code::kErrorFrame && wire_error == WireError::kOverloaded;
  }
};

class NetClient {
 public:
  explicit NetClient(NetClientConfig config = {});
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // IPv4 dotted-quad host (the serving boundary is loopback/LAN-facing).
  bool Connect(const std::string& host, uint16_t port,
               std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  RpcStatus Estimate(const runtime::EstimateRequest& request,
                     runtime::EstimateResponse* out);
  RpcStatus EstimateBatch(const std::vector<runtime::EstimateRequest>& requests,
                          std::vector<runtime::EstimateResponse>* out);
  RpcStatus ChoosePlacement(
      const std::vector<runtime::PlacementCandidate>& candidates,
      runtime::PlacementResult* out);
  // As above with an explicit ranking policy (least-expected-cost /
  // risk-adjusted placement; see runtime::PlacementOptions).
  RpcStatus ChoosePlacement(
      const std::vector<runtime::PlacementCandidate>& candidates,
      const runtime::PlacementOptions& options,
      runtime::PlacementResult* out);
  RpcStatus Stats(WireStats* out);

  // Reports an observed execution cost back to the server's adaptation
  // fast path (kReportActual). `*accepted` echoes the server's ack: false
  // means the report was decoded but not buffered (no handler, or the
  // feedback ring was full) — advisory, not an error.
  RpcStatus ReportActual(const runtime::FeedbackReport& report,
                         bool* accepted);

  // Escape hatch for boundary tests: sends a pre-encoded frame and returns
  // the raw response frame (if any).
  RpcStatus RoundTrip(MessageType type, const std::vector<uint8_t>& payload,
                      Frame* out);

 private:
  RpcStatus SendFrame(MessageType type, uint32_t request_id,
                      const std::vector<uint8_t>& payload);
  RpcStatus ReadFrame(uint32_t expect_request_id, Frame* out);
  // Shared tail: expect `want` (or an error frame, mapped to kErrorFrame).
  RpcStatus Call(MessageType send_type, const std::vector<uint8_t>& payload,
                 MessageType want, std::vector<uint8_t>* response_payload);

  const NetClientConfig config_;
  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  FrameAssembler assembler_;
};

}  // namespace mscm::net

#endif  // MSCM_NET_CLIENT_H_
