// Multi-threaded epoll serving front end for the EstimationService: the
// MDBS agent finally answers cost questions over a socket, the way the
// paper's remote global query optimizers would ask them.
//
// Architecture (one process, no RPC framework):
//
//   listener ──▶ accept (loop 0) ──▶ connection assigned round-robin to an
//   IO event loop (epoll, level-triggered). The loop owns the connection's
//   read side: bytes → FrameAssembler → frames. Each decoded frame passes
//   admission control and is dispatched as one task onto the
//   EstimationService's ThreadPool; the task decodes the payload at the
//   wire boundary (see wire_format.h), computes through the service, and
//   queues the encoded response on the connection's write buffer. An
//   eventfd wake tells the owning loop to flush (workers never write to the
//   socket themselves — the loop is the only writer, so response bytes of
//   concurrent tasks never interleave mid-frame).
//
// Admission control — the server prefers shedding to buffering:
//   * max_inflight bounds dispatched-but-unanswered requests server-wide;
//     past it, requests get an immediate kOverloaded error frame instead of
//     queueing (the client retries elsewhere / later — that is the
//     load-shed contract, see DESIGN.md §8).
//   * max_read_buffer bounds unparsed inbound bytes per connection; a peer
//     that streams frames faster than it drains responses is disconnected,
//     not buffered without bound.
//   * max_write_buffer bounds queued outbound bytes per connection; a peer
//     that stops reading its responses is disconnected.
//   * max_connections bounds accepted sockets; past it, accepts are closed
//     immediately.
//
// Graceful shutdown (Stop): stop accepting → stop admitting (reads are
// disabled, so no new frames decode) → drain every dispatched request →
// flush response buffers (bounded by flush_timeout) → close. A request that
// was admitted is therefore always answered before its connection closes —
// never dropped silently. Full-stack teardown order is
//   server.Stop() → ModelRefreshDaemon dtor → service.StopProbing() →
//   EstimationService dtor (ThreadPool join)
// so no component's background threads can touch a component destroyed
// before it.

#ifndef MSCM_NET_SERVER_H_
#define MSCM_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire_format.h"
#include "runtime/estimation_service.h"

namespace mscm::net {

struct EstimateServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; EstimateServer::port() after Start
  int io_threads = 1;
  int listen_backlog = 128;
  // Frames with a larger payload length are rejected as malformed before
  // any buffering toward them (capped at wire_format's kMaxPayloadBytes).
  uint32_t max_frame_payload = kMaxPayloadBytes;
  size_t max_connections = 1024;
  // Server-wide bound on dispatched-but-unanswered requests; 0 sheds
  // everything (useful to force the overload path in tests).
  size_t max_inflight = 256;
  size_t max_read_buffer = 1u << 20;
  size_t max_write_buffer = 1u << 22;
  // Stop(): how long to keep flushing queued responses to slow readers
  // after the in-flight drain completes.
  std::chrono::milliseconds flush_timeout{2000};
  // Sink for kReportActual frames (typically AdaptationController::Record).
  // Returns whether the report was buffered; the ack echoes that. Null =
  // feedback unsupported: reports are decoded, counted, and acked
  // accepted=false — never an error frame (feedback is advisory).
  std::function<bool(const runtime::FeedbackReport&)> feedback_handler;
};

// Monotonic serving-boundary counters (the runtime's own counters stay in
// RuntimeStatsSnapshot; these cover what happens on the wire).
struct NetServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  // over max_connections
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t malformed_frames = 0;     // stream poisoned; connection closed
  uint64_t unknown_type_frames = 0;  // answered kUnknownType, kept open
  uint64_t requests_dispatched = 0;  // admitted onto the pool
  uint64_t requests_completed = 0;   // dispatched tasks finished
  uint64_t responses_sent = 0;       // data responses enqueued
  uint64_t error_frames_sent = 0;    // error frames enqueued
  uint64_t invalid_requests = 0;     // kInvalidRequest at the wire boundary
  uint64_t overload_shed = 0;        // kOverloaded by admission control
  uint64_t shutdown_shed = 0;        // kShuttingDown while draining
  uint64_t internal_errors = 0;      // handler threw; answered kInternal
  uint64_t read_limit_closes = 0;
  uint64_t write_limit_closes = 0;
  uint64_t dropped_responses = 0;  // computed, but the peer had gone away
  uint64_t estimates = 0;
  uint64_t batches = 0;
  uint64_t batch_items = 0;
  uint64_t placements = 0;
  uint64_t stats_requests = 0;
  uint64_t feedback_reports = 0;  // kReportActual frames decoded and routed
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;

  std::string ToString() const;
};

class EstimateServer {
 public:
  // `service` must outlive the server; request tasks run on
  // service->worker_pool() (inline on the IO loop with zero workers).
  explicit EstimateServer(runtime::EstimationService* service,
                          EstimateServerConfig config = {});
  ~EstimateServer();  // calls Stop()

  EstimateServer(const EstimateServer&) = delete;
  EstimateServer& operator=(const EstimateServer&) = delete;

  // Binds, listens, and starts the IO loops. False (with *error set) on any
  // socket failure. Start-once: a stopped server is not restartable.
  bool Start(std::string* error = nullptr);

  // The bound port (after a successful Start).
  uint16_t port() const { return port_; }

  // Graceful shutdown; see the header comment for the ordering contract.
  // Idempotent, safe from any non-IO thread.
  void Stop();

  bool running() const { return started_.load() && !stopped_.load(); }

  NetServerStatsSnapshot Stats() const;

  // Dispatched-but-unanswered requests right now (admission gauge).
  size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }

 private:
  struct Connection;
  struct Loop;

  void LoopThread(size_t index);
  void AcceptReady();
  void OnReadable(Loop& loop, const std::shared_ptr<Connection>& conn);
  void OnWritable(Loop& loop, const std::shared_ptr<Connection>& conn);
  void HandleFrame(Loop& loop, const std::shared_ptr<Connection>& conn,
                   Frame frame);
  // The dispatched task body: decode, compute, enqueue the response.
  void ServeFrame(const std::shared_ptr<Connection>& conn, const Frame& frame);
  void FinishRequest(const std::shared_ptr<Connection>& conn);
  void FinishInflightOnly();
  void CountBoundaryReject(WireError code);
  std::map<std::string, uint64_t> NetCounterEntries() const;
  void QueueBytes(const std::shared_ptr<Connection>& conn,
                  std::vector<uint8_t> bytes);
  void QueueResponse(const std::shared_ptr<Connection>& conn,
                     std::vector<uint8_t> bytes);
  void QueueError(const std::shared_ptr<Connection>& conn, uint32_t request_id,
                  WireError code, const std::string& message);
  void CloseConnection(Loop& loop, const std::shared_ptr<Connection>& conn);
  void WakeLoop(Loop& loop);
  void ApplyWriteInterest(Loop& loop);
  bool AllWritesFlushed() const;

  runtime::EstimationService* const service_;
  const EstimateServerConfig config_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<size_t> next_loop_{0};
  std::atomic<size_t> num_connections_{0};

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mutex_;  // serializes Stop()

  std::atomic<size_t> inflight_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  // Counters (relaxed; the serving boundary is not the hot path the sharded
  // runtime counters protect).
  struct Counters;
  std::unique_ptr<Counters> counters_;
};

}  // namespace mscm::net

#endif  // MSCM_NET_SERVER_H_
