// Binary wire protocol for the remote estimation boundary (src/net).
//
// The paper frames the MDBS agent as a component a *remote* global query
// optimizer consults for cost questions; everything before this layer served
// those questions in-process. The wire format is deliberately small and
// typed — length-prefixed frames carrying one request or response each, no
// RPC framework:
//
//   frame   := header payload
//   header  := magic:u16 version:u8 type:u8 request_id:u32 payload_len:u32
//              (12 bytes, little-endian)
//   payload := message body, layout per MessageType, payload_len bytes
//
// `request_id` is chosen by the client and echoed verbatim in the response
// (including error frames), so clients may pipeline requests on one
// connection. Parsing is strictly bounds-checked: every read goes through
// WireReader, which can only fail closed (no over-read, no exception), and
// FrameAssembler enforces the header invariants (magic, version, payload
// cap) before a single payload byte is interpreted. Malformed bytes poison
// the stream — the server answers with one kMalformedFrame error and closes.
//
// Semantic validation happens at this boundary too (see the Decode*
// functions): non-finite features, empty batches, and out-of-range class
// ids are rejected as kInvalidRequest *before* the request can reach the
// EstimationService, so a hostile peer can never drive the service with
// values its own boundary checks would have to absorb.

#ifndef MSCM_NET_WIRE_FORMAT_H_
#define MSCM_NET_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "runtime/estimate_types.h"
#include "runtime/estimation_service.h"

namespace mscm::net {

// ---- Protocol constants -----------------------------------------------------

inline constexpr uint16_t kMagic = 0x4D43;  // "CM" on the wire (little-endian)
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderSize = 12;

// Hard cap a codec user may lower but never raise: no conforming frame
// carries more payload than this, so FrameAssembler can reject a hostile
// length prefix before buffering toward it.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;

// Per-message element caps — bounds the decoded size of any single frame.
inline constexpr size_t kMaxSiteNameBytes = 256;
inline constexpr size_t kMaxFeatures = 1024;
inline constexpr size_t kMaxBatchItems = 8192;
inline constexpr size_t kMaxErrorMessageBytes = 1024;
inline constexpr size_t kMaxStatsEntries = 256;
inline constexpr size_t kMaxStatsKeyBytes = 128;

enum class MessageType : uint8_t {
  kEstimateRequest = 1,
  kEstimateResponse = 2,
  kEstimateBatchRequest = 3,
  kEstimateBatchResponse = 4,
  kPlacementRequest = 5,
  kPlacementResponse = 6,
  kStatsRequest = 7,
  kStatsResponse = 8,
  kError = 9,
  // Feedback: the client reports the observed cost of a query the server
  // priced earlier, closing the adaptation loop (runtime/adaptation.h).
  kReportActual = 10,
  kReportActualAck = 11,
};

bool IsKnownMessageType(uint8_t type);
const char* ToString(MessageType t);

// Typed error frames (payload of MessageType::kError).
enum class WireError : uint8_t {
  kNone = 0,
  kMalformedFrame = 1,     // structurally undecodable bytes; stream poisoned
  kUnsupportedVersion = 2, // header version != kProtocolVersion
  kUnknownType = 3,        // header type not in MessageType
  kInvalidRequest = 4,     // decoded, but semantically rejected at the wire
  kOverloaded = 5,         // admission control shed the request
  kShuttingDown = 6,       // server draining; no new work admitted
  kInternal = 7,           // server-side failure computing the response
};

const char* ToString(WireError e);

struct ErrorBody {
  WireError code = WireError::kNone;
  std::string message;
};

// One decoded frame: the raw type byte (which may be unknown — the server
// answers those with kUnknownType rather than dropping the connection), the
// echoed request id, and the unparsed payload bytes.
struct Frame {
  uint8_t type = 0;
  uint32_t request_id = 0;
  std::vector<uint8_t> payload;
};

// ---- Bounds-checked primitives ---------------------------------------------

// Append-only little-endian encoder. Never fails; the caller frames the
// result with EncodeFrame.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutF64(double v);  // IEEE-754 bit pattern, little-endian
  // u16 length prefix + bytes; truncates at u16 range (callers bound their
  // strings well below it).
  void PutString(const std::string& s);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Fail-closed little-endian decoder over a borrowed byte range. Any read
// past the end sets ok() false and returns a zero value; once !ok() every
// subsequent read is a no-op, so decoders may read unconditionally and
// check ok() once.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  uint8_t TakeU8();
  uint16_t TakeU16();
  uint32_t TakeU32();
  uint64_t TakeU64();
  double TakeF64();
  // Reads a u16-prefixed string; fails the reader when the prefix exceeds
  // `max_bytes` (caller's semantic cap) or the remaining payload.
  std::string TakeString(size_t max_bytes);

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  // A fully-consumed payload; trailing garbage makes a frame malformed.
  bool AtEnd() const { return ok_ && pos_ == size_; }

 private:
  bool Ensure(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Frame layer ------------------------------------------------------------

// Encodes header + payload into one contiguous buffer ready to write.
std::vector<uint8_t> EncodeFrame(MessageType type, uint32_t request_id,
                                 const std::vector<uint8_t>& payload);

// Incremental stream → frame assembler for one connection (or one fuzz
// input). Feed bytes as they arrive; Next() yields completed frames in
// order. The first header violation (bad magic, wrong version, payload over
// the cap) poisons the stream: Feed returns false, error() says why, and no
// further frames are produced. Payload *contents* are not interpreted here.
class FrameAssembler {
 public:
  explicit FrameAssembler(uint32_t max_payload = kMaxPayloadBytes);

  // Appends bytes and extracts any completed frames. Returns false once the
  // stream is poisoned (the bytes are discarded).
  bool Feed(const uint8_t* data, size_t n);

  // The next completed frame, FIFO, if any.
  std::optional<Frame> Next();

  bool broken() const { return error_ != WireError::kNone; }
  WireError error() const { return error_; }
  // Bytes buffered awaiting a complete frame (read-limit accounting).
  size_t buffered_bytes() const { return buffer_.size(); }
  size_t frames_ready() const { return ready_.size(); }

 private:
  uint32_t max_payload_;  // non-const so a client can reset by reassignment
  std::vector<uint8_t> buffer_;
  std::deque<Frame> ready_;
  WireError error_ = WireError::kNone;
};

// ---- Message bodies ---------------------------------------------------------
//
// Decoders distinguish two failure classes: nullopt + *error==kMalformedFrame
// for structurally broken payloads (truncation, length-prefix lies, trailing
// bytes), and nullopt + *error==kInvalidRequest for well-formed payloads the
// boundary refuses to forward (non-finite feature or probing cost, empty
// batch, class id outside the enum, oversized site name). Decoders never
// throw.

// Response payloads carry the serving model's generation as an append-only
// payload-end extension (the adaptation loop credits feedback to the
// generation that produced the estimate):
//   single:    EstimateResponse, [u64 generation]
//   batch:     u32 count, count x EstimateResponse, [count x u64 generation]
//   placement: ... existing extension ..., [count x u64 generation]
// A payload that ends at the original layout decodes with generation 0 (old
// peers keep working); one that starts the extension must complete it
// exactly — a partial extension is a malformed frame, never half-applied.
void EncodeEstimateRequest(const runtime::EstimateRequest& request,
                           WireWriter& w);
void EncodeEstimateResponse(const runtime::EstimateResponse& response,
                            WireWriter& w);

std::optional<runtime::EstimateRequest> DecodeEstimateRequest(
    WireReader& r, WireError* error);
std::optional<runtime::EstimateResponse> DecodeEstimateResponse(WireReader& r);

// Whole-payload forms (validate AtEnd too).
std::optional<runtime::EstimateRequest> DecodeEstimateRequestPayload(
    const std::vector<uint8_t>& payload, WireError* error);
std::vector<uint8_t> EncodeEstimateResponsePayload(
    const runtime::EstimateResponse& response);
std::optional<runtime::EstimateResponse> DecodeEstimateResponsePayload(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeEstimateBatchRequest(
    const std::vector<runtime::EstimateRequest>& requests);
std::vector<uint8_t> EncodeEstimateBatchResponse(
    const std::vector<runtime::EstimateResponse>& responses);
std::optional<std::vector<runtime::EstimateRequest>>
DecodeEstimateBatchRequestPayload(const std::vector<uint8_t>& payload,
                                  WireError* error);
std::optional<std::vector<runtime::EstimateResponse>>
DecodeEstimateBatchResponsePayload(const std::vector<uint8_t>& payload);

// Placement frames carry append-only extensions past the original layout:
//   request:  u32 count, count x (EstimateRequest, f64 shipping),
//             [u8 policy, f64 risk_lambda, f64 band_fraction]
//   response: u32 chosen, u32 count, count x (EstimateResponse, f64 total),
//             [u8 policy, count x (f64 mean, f64 low, f64 high, u8 dflags,
//              f64 score)]
// A frame that ends at the original layout decodes to defaults (point-
// estimate policy, zero-width distributions) — old peers keep working. A
// frame that starts the extension must complete it, and every extended
// value is validated fail-closed (policy in range, lambda finite and
// non-negative, band in [0, 1], low <= high) — a truncated or corrupt
// extension is rejected, never half-applied.
std::vector<uint8_t> EncodePlacementRequest(
    const std::vector<runtime::PlacementCandidate>& candidates,
    const runtime::PlacementOptions& options = {});
std::vector<uint8_t> EncodePlacementResponse(
    const runtime::PlacementResult& result);
std::optional<std::vector<runtime::PlacementCandidate>>
DecodePlacementRequestPayload(const std::vector<uint8_t>& payload,
                              WireError* error,
                              runtime::PlacementOptions* options = nullptr);
std::optional<runtime::PlacementResult> DecodePlacementResponsePayload(
    const std::vector<uint8_t>& payload);

// Feedback frames (kReportActual / kReportActualAck):
//   report: site string, u8 class, f64 actual_cost, f64 probing_cost,
//           u64 model_generation, u16 n_features, n x f64
//   ack:    u8 accepted (0 = buffered nowhere: no handler, ring full, or
//           controller rejected it; the report is advisory either way)
// Decoding is fail-closed like every other body: a non-positive or
// non-finite actual cost, a NaN probing cost, a non-finite feature or an
// out-of-range class id rejects the frame at the boundary.
std::vector<uint8_t> EncodeReportActual(const runtime::FeedbackReport& report);
std::optional<runtime::FeedbackReport> DecodeReportActualPayload(
    const std::vector<uint8_t>& payload, WireError* error);
std::vector<uint8_t> EncodeReportActualAck(bool accepted);
std::optional<bool> DecodeReportActualAckPayload(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeErrorBody(const ErrorBody& body);
std::optional<ErrorBody> DecodeErrorBodyPayload(
    const std::vector<uint8_t>& payload);

// A ready-to-send error frame echoing `request_id`.
std::vector<uint8_t> EncodeErrorFrame(uint32_t request_id, WireError code,
                                      const std::string& message);

}  // namespace mscm::net

#endif  // MSCM_NET_WIRE_FORMAT_H_
