// mscm_loadgen — closed- and open-loop load generator for mscm_served.
//
//   mscm_loadgen --port N [--host A] [--mode closed|open] [--connections N]
//                [--duration-s S] [--rate R] [--batch N] [--think-us N]
//                [--sites N] [--placement N] [--policy point|expected|risk]
//                [--lambda L] [--feedback] [--feedback-noise S]
//                [--feedback-drift R] [--stats] [--json FILE]
//
// --placement N switches the traffic to PlacementRequest frames of N
// candidates each; --policy picks the ranking carried on the wire
// (point-estimate, least-expected-cost, or risk-adjusted with --lambda).
//
// --feedback closes the adaptation loop: after every successful estimate
// the connection reports the ground-truth cost via kReportActual (with
// --feedback-noise relative Gaussian noise; --feedback-drift R inflates the
// truth by (1 + R * elapsed_seconds) so the server's models go stale and
// its RLS fast tier / re-derivation slow tier must chase).
//
// Closed loop measures server capacity (each connection waits for its
// response); open loop offers a fixed aggregate arrival rate and shows what
// saturation does to tail latency and kOverloaded shedding. --sites must
// match the server's federation size so requests hit registered models.
// --stats polls the server's StatsResponse after the run and prints every
// wire-stable key (runtime counters + net.* serving-boundary counters).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/client.h"
#include "net/loadgen.h"

namespace {

long ArgLong(int argc, char** argv, const char* flag, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

double ArgDouble(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

const char* ArgStr(int argc, char** argv, const char* flag,
                   const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mscm;

  net::LoadGenConfig config;
  config.host = ArgStr(argc, argv, "--host", "127.0.0.1");
  config.port = static_cast<uint16_t>(ArgLong(argc, argv, "--port", 0));
  if (config.port == 0) {
    std::fprintf(stderr, "mscm_loadgen: --port is required\n");
    return 2;
  }
  const std::string mode = ArgStr(argc, argv, "--mode", "closed");
  config.mode = mode == "open" ? net::LoadGenConfig::Mode::kOpen
                               : net::LoadGenConfig::Mode::kClosed;
  config.connections =
      static_cast<int>(ArgLong(argc, argv, "--connections", 4));
  config.duration = std::chrono::milliseconds(static_cast<int64_t>(
      1000.0 * ArgDouble(argc, argv, "--duration-s", 3.0)));
  config.target_rate = ArgDouble(argc, argv, "--rate", 2000.0);
  config.batch_size = static_cast<size_t>(ArgLong(argc, argv, "--batch", 1));
  config.think_time =
      std::chrono::microseconds(ArgLong(argc, argv, "--think-us", 0));
  config.placement_candidates =
      static_cast<size_t>(ArgLong(argc, argv, "--placement", 0));
  const std::string policy = ArgStr(argc, argv, "--policy", "point");
  if (policy == "expected") {
    config.placement_policy = core::PlacementPolicy::kExpectedCost;
  } else if (policy == "risk") {
    config.placement_policy = core::PlacementPolicy::kRiskAdjusted;
  }
  config.placement_risk_lambda = ArgDouble(argc, argv, "--lambda", 0.5);
  config.feedback = HasFlag(argc, argv, "--feedback");
  config.feedback_noise =
      ArgDouble(argc, argv, "--feedback-noise", config.feedback_noise);
  config.feedback_drift =
      ArgDouble(argc, argv, "--feedback-drift", config.feedback_drift);
  const size_t sites =
      static_cast<size_t>(ArgLong(argc, argv, "--sites", 4));
  config.workload = net::MakeUniformWorkload(1024, sites, /*seed=*/17);

  std::printf("mscm_loadgen: %s loop, %d connections, batch=%zu, "
              "%.1fs against %s:%u\n",
              mode.c_str(), config.connections, config.batch_size,
              std::chrono::duration<double>(config.duration).count(),
              config.host.c_str(), config.port);
  const net::LoadGenResult result = net::RunLoadGen(config);
  std::printf("%s\n", result.ToString().c_str());

  if (HasFlag(argc, argv, "--stats")) {
    net::NetClient client;
    std::string error;
    net::WireStats stats;
    if (client.Connect(config.host, config.port, &error) &&
        client.Stats(&stats).ok()) {
      std::printf("--- server stats ---\n%s", stats.ToString().c_str());
    } else {
      std::fprintf(stderr, "mscm_loadgen: stats poll failed: %s\n",
                   error.c_str());
    }
  }

  const char* json_path = ArgStr(argc, argv, "--json", "");
  if (json_path[0] != '\0') {
    FILE* json = std::fopen(json_path, "w");
    if (json != nullptr) {
      std::fprintf(
          json,
          "{\"mode\": \"%s\", \"connections\": %d, \"batch\": %zu, "
          "\"placements_chosen\": %llu, "
          "\"completed\": %llu, \"items\": %llu, \"qps\": %.1f, "
          "\"items_per_sec\": %.1f, \"overloaded\": %llu, \"errors\": %llu, "
          "\"transport_errors\": %llu, \"behind_schedule\": %llu, "
          "\"feedback_accepted\": %llu, \"feedback_rejected\": %llu, "
          "\"p50_us\": %.1f, \"p90_us\": %.1f, \"p99_us\": %.1f, "
          "\"mean_us\": %.1f, \"max_us\": %.1f}\n",
          mode.c_str(), config.connections, config.batch_size,
          static_cast<unsigned long long>(result.placements_chosen),
          static_cast<unsigned long long>(result.completed),
          static_cast<unsigned long long>(result.items), result.qps,
          result.items_per_sec,
          static_cast<unsigned long long>(result.overloaded),
          static_cast<unsigned long long>(result.error_frames),
          static_cast<unsigned long long>(result.transport_errors),
          static_cast<unsigned long long>(result.behind_schedule),
          static_cast<unsigned long long>(result.feedback_accepted),
          static_cast<unsigned long long>(result.feedback_rejected),
          result.p50_us, result.p90_us, result.p99_us, result.mean_us,
          result.max_us);
      std::fclose(json);
    }
  }

  // A run that completed nothing is a failed run (the smoke job keys off
  // this exit code).
  return result.completed > 0 ? 0 : 1;
}
