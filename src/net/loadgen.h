// Load generator for the estimation serving boundary: drives an
// EstimateServer over real sockets and reports end-to-end throughput and
// tail latency — the numbers the ROADMAP's "millions of users" goal is
// actually judged on, as opposed to in-process call rates.
//
// Two driving disciplines:
//   * closed loop — N connections, each waiting for its response (plus an
//     optional think time) before sending the next request. Throughput is
//     bounded by server latency; this measures capacity.
//   * open loop — requests leave on a fixed schedule (target_rate across
//     all connections) regardless of response times, the way independent
//     optimizer clients arrive in aggregate. When the server saturates,
//     latency grows and kOverloaded sheds appear instead of the rate
//     silently degrading; `behind_schedule` counts sends the generator
//     could not launch on time (a saturated *generator* would understate
//     pressure — watch that column, it is the coordinated-omission tell).

#ifndef MSCM_NET_LOADGEN_H_
#define MSCM_NET_LOADGEN_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cost_distribution.h"
#include "runtime/estimate_types.h"

namespace mscm::net {

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  enum class Mode { kClosed, kOpen };
  Mode mode = Mode::kClosed;
  int connections = 4;
  std::chrono::nanoseconds duration = std::chrono::seconds(1);
  // Closed loop: pause between response and next request.
  std::chrono::nanoseconds think_time{0};
  // Open loop: aggregate request arrival rate (req/s) across connections.
  double target_rate = 1000.0;
  // Requests per frame: 1 sends EstimateRequest, >1 sends
  // EstimateBatchRequest slicing the workload.
  size_t batch_size = 1;
  // Placement traffic: > 0 sends PlacementRequest frames instead, each
  // carrying this many candidates sliced from the workload (shipping costs
  // are small deterministic values varied per candidate). Overrides
  // batch_size.
  size_t placement_candidates = 0;
  // Ranking policy carried on placement frames (see runtime::PlacementOptions).
  core::PlacementPolicy placement_policy = core::PlacementPolicy::kPointEstimate;
  double placement_risk_lambda = 0.5;
  // Feedback traffic (single-estimate mode only): after each successful
  // estimate, report an observed cost via kReportActual, closing the
  // adaptation loop over the wire. The observed cost is a deterministic
  // ground-truth law matching mscm_served's synthetic federation —
  // (state+1) * (0.5 f0 + 0.2 f1 + 0.1 f2) — so the server's RLS fast tier
  // has a stable target independent of its own (adapting) coefficients.
  bool feedback = false;
  // Relative Gaussian noise on reported costs (stddev, fraction of truth).
  double feedback_noise = 0.05;
  // Per-second multiplicative drift of the ground truth: the reported cost
  // is scaled by (1 + feedback_drift * elapsed_seconds), so a non-zero rate
  // makes every served model progressively stale and forces the adaptation
  // tiers to chase.
  double feedback_drift = 0.0;
  // Cycled round-robin by every connection. Must be non-empty.
  std::vector<runtime::EstimateRequest> workload;
};

struct LoadGenResult {
  uint64_t completed = 0;        // frames answered with a data response
  uint64_t items = 0;            // estimates inside those frames
  uint64_t placements_chosen = 0;  // placement responses with chosen >= 0
  uint64_t overloaded = 0;       // kOverloaded error frames
  uint64_t error_frames = 0;     // other typed error frames
  uint64_t transport_errors = 0; // send/recv/connect failures
  uint64_t behind_schedule = 0;  // open loop: sends launched late
  uint64_t feedback_accepted = 0;  // kReportActual acked accepted=true
  uint64_t feedback_rejected = 0;  // acked accepted=false (ring full / off)
  double seconds = 0.0;
  double qps = 0.0;          // completed frames / second
  double items_per_sec = 0.0;
  // Per-frame round-trip latency (successful responses only).
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;

  std::string ToString() const;
};

// Blocks for ~config.duration. Connections that die mid-run reconnect once
// per failure; a server that is down yields transport_errors, not a hang.
LoadGenResult RunLoadGen(const LoadGenConfig& config);

// A synthetic workload over `sites` × the two serving classes, matching the
// federation mscm_served stands up (sites named "site0".."siteN-1").
std::vector<runtime::EstimateRequest> MakeUniformWorkload(size_t n_requests,
                                                          size_t n_sites,
                                                          uint64_t seed);

}  // namespace mscm::net

#endif  // MSCM_NET_LOADGEN_H_
