#include "net/wire_format.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace mscm::net {

namespace {

// The EstimateStatus / contention-state values that may legally appear in a
// response frame. Kept local: the wire is stricter than the in-memory types.
constexpr uint8_t kMaxStatusByte =
    static_cast<uint8_t>(runtime::EstimateStatus::kInvalidRequest);
constexpr uint8_t kMaxClassByte =
    static_cast<uint8_t>(core::QueryClassId::kJoinIndex);

constexpr uint8_t kFlagStaleProbe = 1u << 0;
constexpr uint8_t kFlagStaleModel = 1u << 1;
constexpr uint8_t kFlagDegraded = 1u << 2;

// Placement extension (append-only fields; see the header's layout note).
constexpr uint8_t kMaxPolicyByte =
    static_cast<uint8_t>(core::PlacementPolicy::kRiskAdjusted);
constexpr uint8_t kFlagDistStale = 1u << 0;
constexpr uint8_t kFlagDistDegraded = 1u << 1;
constexpr uint8_t kFlagDistHasInterval = 1u << 2;

void Fail(WireError* error, WireError code) {
  if (error != nullptr) *error = code;
}

}  // namespace

bool IsKnownMessageType(uint8_t type) {
  return type >= static_cast<uint8_t>(MessageType::kEstimateRequest) &&
         type <= static_cast<uint8_t>(MessageType::kReportActualAck);
}

const char* ToString(MessageType t) {
  switch (t) {
    case MessageType::kEstimateRequest: return "EstimateRequest";
    case MessageType::kEstimateResponse: return "EstimateResponse";
    case MessageType::kEstimateBatchRequest: return "EstimateBatchRequest";
    case MessageType::kEstimateBatchResponse: return "EstimateBatchResponse";
    case MessageType::kPlacementRequest: return "PlacementRequest";
    case MessageType::kPlacementResponse: return "PlacementResponse";
    case MessageType::kStatsRequest: return "StatsRequest";
    case MessageType::kStatsResponse: return "StatsResponse";
    case MessageType::kError: return "Error";
    case MessageType::kReportActual: return "ReportActual";
    case MessageType::kReportActualAck: return "ReportActualAck";
  }
  return "?";
}

const char* ToString(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kMalformedFrame: return "malformed_frame";
    case WireError::kUnsupportedVersion: return "unsupported_version";
    case WireError::kUnknownType: return "unknown_type";
    case WireError::kInvalidRequest: return "invalid_request";
    case WireError::kOverloaded: return "overloaded";
    case WireError::kShuttingDown: return "shutting_down";
    case WireError::kInternal: return "internal";
  }
  return "?";
}

// ---- WireWriter -------------------------------------------------------------

void WireWriter::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::PutF64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(const std::string& s) {
  const size_t n = std::min<size_t>(s.size(), 0xFFFF);
  PutU16(static_cast<uint16_t>(n));
  buf_.insert(buf_.end(), s.begin(), s.begin() + static_cast<long>(n));
}

// ---- WireReader -------------------------------------------------------------

bool WireReader::Ensure(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t WireReader::TakeU8() {
  if (!Ensure(1)) return 0;
  return data_[pos_++];
}

uint16_t WireReader::TakeU16() {
  if (!Ensure(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t WireReader::TakeU32() {
  if (!Ensure(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t WireReader::TakeU64() {
  if (!Ensure(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::TakeF64() {
  const uint64_t bits = TakeU64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::TakeString(size_t max_bytes) {
  const uint16_t n = TakeU16();
  if (!ok_ || n > max_bytes || !Ensure(n)) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

// ---- Frame layer ------------------------------------------------------------

std::vector<uint8_t> EncodeFrame(MessageType type, uint32_t request_id,
                                 const std::vector<uint8_t>& payload) {
  WireWriter w;
  w.PutU16(kMagic);
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU32(request_id);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  std::vector<uint8_t> out = w.Take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameAssembler::FrameAssembler(uint32_t max_payload)
    : max_payload_(std::min(max_payload, kMaxPayloadBytes)) {}

bool FrameAssembler::Feed(const uint8_t* data, size_t n) {
  if (broken()) return false;
  buffer_.insert(buffer_.end(), data, data + n);
  while (buffer_.size() >= kHeaderSize) {
    WireReader r(buffer_.data(), kHeaderSize);
    const uint16_t magic = r.TakeU16();
    const uint8_t version = r.TakeU8();
    const uint8_t type = r.TakeU8();
    const uint32_t request_id = r.TakeU32();
    const uint32_t payload_len = r.TakeU32();
    if (magic != kMagic) {
      error_ = WireError::kMalformedFrame;
    } else if (version != kProtocolVersion) {
      error_ = WireError::kUnsupportedVersion;
    } else if (payload_len > max_payload_) {
      error_ = WireError::kMalformedFrame;
    }
    if (broken()) {
      buffer_.clear();
      return false;
    }
    if (buffer_.size() < kHeaderSize + payload_len) break;
    Frame frame;
    frame.type = type;
    frame.request_id = request_id;
    frame.payload.assign(buffer_.begin() + kHeaderSize,
                         buffer_.begin() + kHeaderSize + payload_len);
    ready_.push_back(std::move(frame));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + kHeaderSize + payload_len);
  }
  return true;
}

std::optional<Frame> FrameAssembler::Next() {
  if (ready_.empty()) return std::nullopt;
  Frame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

// ---- Estimate request/response ----------------------------------------------

void EncodeEstimateRequest(const runtime::EstimateRequest& request,
                           WireWriter& w) {
  w.PutString(request.site);
  w.PutU8(static_cast<uint8_t>(request.class_id));
  w.PutF64(request.probing_cost);
  w.PutU16(static_cast<uint16_t>(
      std::min<size_t>(request.features.size(), kMaxFeatures)));
  for (size_t i = 0; i < request.features.size() && i < kMaxFeatures; ++i) {
    w.PutF64(request.features[i]);
  }
}

std::optional<runtime::EstimateRequest> DecodeEstimateRequest(
    WireReader& r, WireError* error) {
  runtime::EstimateRequest request;
  request.site = r.TakeString(kMaxSiteNameBytes);
  const uint8_t class_byte = r.TakeU8();
  request.probing_cost = r.TakeF64();
  const uint16_t n_features = r.TakeU16();
  if (r.ok() && n_features > kMaxFeatures) {
    Fail(error, WireError::kInvalidRequest);
    return std::nullopt;
  }
  request.features.reserve(n_features);
  for (uint16_t i = 0; i < n_features && r.ok(); ++i) {
    request.features.push_back(r.TakeF64());
  }
  if (!r.ok()) {
    Fail(error, WireError::kMalformedFrame);
    return std::nullopt;
  }
  // Semantic boundary checks: nothing non-finite or out of the enum range
  // may pass this point toward the service. A NaN probing cost is rejected;
  // any negative finite value is the "use the cached probe" sentinel.
  if (class_byte > kMaxClassByte) {
    Fail(error, WireError::kInvalidRequest);
    return std::nullopt;
  }
  if (std::isnan(request.probing_cost) ||
      request.probing_cost == std::numeric_limits<double>::infinity()) {
    Fail(error, WireError::kInvalidRequest);
    return std::nullopt;
  }
  for (const double f : request.features) {
    if (!std::isfinite(f)) {
      Fail(error, WireError::kInvalidRequest);
      return std::nullopt;
    }
  }
  request.class_id = static_cast<core::QueryClassId>(class_byte);
  return request;
}

void EncodeEstimateResponse(const runtime::EstimateResponse& response,
                            WireWriter& w) {
  w.PutU8(static_cast<uint8_t>(response.status));
  w.PutF64(response.estimate_seconds);
  w.PutF64(response.probing_cost);
  w.PutU32(static_cast<uint32_t>(response.state));
  uint8_t flags = 0;
  if (response.stale_probe) flags |= kFlagStaleProbe;
  if (response.stale_model) flags |= kFlagStaleModel;
  if (response.degraded) flags |= kFlagDegraded;
  w.PutU8(flags);
}

std::optional<runtime::EstimateResponse> DecodeEstimateResponse(WireReader& r) {
  runtime::EstimateResponse response;
  const uint8_t status_byte = r.TakeU8();
  response.estimate_seconds = r.TakeF64();
  response.probing_cost = r.TakeF64();
  response.state = static_cast<int>(r.TakeU32());
  const uint8_t flags = r.TakeU8();
  if (!r.ok() || status_byte > kMaxStatusByte) return std::nullopt;
  response.status = static_cast<runtime::EstimateStatus>(status_byte);
  response.stale_probe = (flags & kFlagStaleProbe) != 0;
  response.stale_model = (flags & kFlagStaleModel) != 0;
  response.degraded = (flags & kFlagDegraded) != 0;
  return response;
}

std::optional<runtime::EstimateRequest> DecodeEstimateRequestPayload(
    const std::vector<uint8_t>& payload, WireError* error) {
  WireReader r(payload);
  auto request = DecodeEstimateRequest(r, error);
  if (request.has_value() && !r.AtEnd()) {
    Fail(error, WireError::kMalformedFrame);
    return std::nullopt;
  }
  return request;
}

std::vector<uint8_t> EncodeEstimateResponsePayload(
    const runtime::EstimateResponse& response) {
  WireWriter w;
  EncodeEstimateResponse(response, w);
  // Append-only extension: the serving model's generation.
  w.PutU64(response.model_generation);
  return w.Take();
}

std::optional<runtime::EstimateResponse> DecodeEstimateResponsePayload(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  auto response = DecodeEstimateResponse(r);
  if (!response.has_value()) return std::nullopt;
  // Pre-extension payloads end here (generation 0); an extension present
  // must be exactly one u64.
  if (r.remaining() > 0) {
    response->model_generation = r.TakeU64();
  }
  if (!r.AtEnd()) return std::nullopt;
  return response;
}

// ---- Batch ------------------------------------------------------------------

std::vector<uint8_t> EncodeEstimateBatchRequest(
    const std::vector<runtime::EstimateRequest>& requests) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(requests.size()));
  for (const auto& request : requests) EncodeEstimateRequest(request, w);
  return w.Take();
}

std::vector<uint8_t> EncodeEstimateBatchResponse(
    const std::vector<runtime::EstimateResponse>& responses) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(responses.size()));
  for (const auto& response : responses) EncodeEstimateResponse(response, w);
  // Append-only extension: one generation per item, after the item list so
  // pre-extension decoders never see it.
  for (const auto& response : responses) w.PutU64(response.model_generation);
  return w.Take();
}

std::optional<std::vector<runtime::EstimateRequest>>
DecodeEstimateBatchRequestPayload(const std::vector<uint8_t>& payload,
                                  WireError* error) {
  WireReader r(payload);
  const uint32_t count = r.TakeU32();
  if (!r.ok()) {
    Fail(error, WireError::kMalformedFrame);
    return std::nullopt;
  }
  if (count == 0 || count > kMaxBatchItems) {
    Fail(error, WireError::kInvalidRequest);
    return std::nullopt;
  }
  std::vector<runtime::EstimateRequest> requests;
  requests.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto request = DecodeEstimateRequest(r, error);
    if (!request.has_value()) return std::nullopt;
    requests.push_back(std::move(*request));
  }
  if (!r.AtEnd()) {
    Fail(error, WireError::kMalformedFrame);
    return std::nullopt;
  }
  return requests;
}

std::optional<std::vector<runtime::EstimateResponse>>
DecodeEstimateBatchResponsePayload(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  const uint32_t count = r.TakeU32();
  if (!r.ok() || count > kMaxBatchItems) return std::nullopt;
  std::vector<runtime::EstimateResponse> responses;
  responses.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto response = DecodeEstimateResponse(r);
    if (!response.has_value()) return std::nullopt;
    responses.push_back(*response);
  }
  // Pre-extension payloads end here (generation 0). A started extension
  // must carry exactly `count` generations.
  if (r.remaining() > 0) {
    for (uint32_t i = 0; i < count; ++i) {
      responses[i].model_generation = r.TakeU64();
    }
    if (!r.ok()) return std::nullopt;
  }
  if (!r.AtEnd()) return std::nullopt;
  return responses;
}

// ---- Placement --------------------------------------------------------------

std::vector<uint8_t> EncodePlacementRequest(
    const std::vector<runtime::PlacementCandidate>& candidates,
    const runtime::PlacementOptions& options) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(candidates.size()));
  for (const auto& candidate : candidates) {
    EncodeEstimateRequest(candidate.request, w);
    w.PutF64(candidate.shipping_seconds);
  }
  // Append-only extension: ranking policy + knobs. Decoders that stop at
  // the original layout (old peers) never see it; decoders that know it
  // read it after the candidate list.
  w.PutU8(static_cast<uint8_t>(options.ranking.policy));
  w.PutF64(options.ranking.risk_lambda);
  w.PutF64(options.ranking.boundary_band_fraction);
  return w.Take();
}

std::vector<uint8_t> EncodePlacementResponse(
    const runtime::PlacementResult& result) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(result.chosen));
  w.PutU32(static_cast<uint32_t>(result.responses.size()));
  for (size_t i = 0; i < result.responses.size(); ++i) {
    EncodeEstimateResponse(result.responses[i], w);
    w.PutF64(i < result.total_seconds.size() ? result.total_seconds[i] : 0.0);
  }
  // Append-only extension: the policy that ranked, then each candidate's
  // served distribution and score.
  w.PutU8(static_cast<uint8_t>(result.policy));
  for (size_t i = 0; i < result.responses.size(); ++i) {
    const core::CostDistribution distribution =
        i < result.distributions.size() ? result.distributions[i]
                                        : core::CostDistribution{};
    w.PutF64(distribution.mean);
    w.PutF64(distribution.low);
    w.PutF64(distribution.high);
    uint8_t dflags = 0;
    if (distribution.stale) dflags |= kFlagDistStale;
    if (distribution.degraded) dflags |= kFlagDistDegraded;
    if (distribution.has_interval) dflags |= kFlagDistHasInterval;
    w.PutU8(dflags);
    w.PutF64(i < result.scores.size()
                 ? result.scores[i]
                 : std::numeric_limits<double>::infinity());
  }
  // Second append-only extension: each candidate's serving generation.
  for (const auto& response : result.responses) {
    w.PutU64(response.model_generation);
  }
  return w.Take();
}

std::optional<std::vector<runtime::PlacementCandidate>>
DecodePlacementRequestPayload(const std::vector<uint8_t>& payload,
                              WireError* error,
                              runtime::PlacementOptions* options) {
  WireReader r(payload);
  const uint32_t count = r.TakeU32();
  if (!r.ok()) {
    Fail(error, WireError::kMalformedFrame);
    return std::nullopt;
  }
  if (count == 0 || count > kMaxBatchItems) {
    Fail(error, WireError::kInvalidRequest);
    return std::nullopt;
  }
  std::vector<runtime::PlacementCandidate> candidates;
  candidates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    runtime::PlacementCandidate candidate;
    auto request = DecodeEstimateRequest(r, error);
    if (!request.has_value()) return std::nullopt;
    candidate.request = std::move(*request);
    candidate.shipping_seconds = r.TakeF64();
    if (!r.ok()) {
      Fail(error, WireError::kMalformedFrame);
      return std::nullopt;
    }
    if (!std::isfinite(candidate.shipping_seconds) ||
        candidate.shipping_seconds < 0.0) {
      Fail(error, WireError::kInvalidRequest);
      return std::nullopt;
    }
    candidates.push_back(std::move(candidate));
  }
  // Frames from pre-extension peers end here: default ranking (point
  // estimate). A frame carrying any extension bytes must carry the whole,
  // valid extension — fail closed on anything else.
  runtime::PlacementOptions decoded_options;
  if (r.remaining() > 0) {
    const uint8_t policy_byte = r.TakeU8();
    const double risk_lambda = r.TakeF64();
    const double band_fraction = r.TakeF64();
    if (!r.ok()) {
      Fail(error, WireError::kMalformedFrame);
      return std::nullopt;
    }
    if (policy_byte > kMaxPolicyByte || !std::isfinite(risk_lambda) ||
        risk_lambda < 0.0 || !std::isfinite(band_fraction) ||
        band_fraction < 0.0 || band_fraction > 1.0) {
      Fail(error, WireError::kInvalidRequest);
      return std::nullopt;
    }
    decoded_options.ranking.policy =
        static_cast<core::PlacementPolicy>(policy_byte);
    decoded_options.ranking.risk_lambda = risk_lambda;
    decoded_options.ranking.boundary_band_fraction = band_fraction;
  }
  if (!r.AtEnd()) {
    Fail(error, WireError::kMalformedFrame);
    return std::nullopt;
  }
  if (options != nullptr) *options = decoded_options;
  return candidates;
}

std::optional<runtime::PlacementResult> DecodePlacementResponsePayload(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  runtime::PlacementResult result;
  result.chosen = static_cast<int>(r.TakeU32());
  const uint32_t count = r.TakeU32();
  if (!r.ok() || count > kMaxBatchItems) return std::nullopt;
  for (uint32_t i = 0; i < count; ++i) {
    auto response = DecodeEstimateResponse(r);
    if (!response.has_value()) return std::nullopt;
    result.responses.push_back(*response);
    result.total_seconds.push_back(r.TakeF64());
  }
  if (!r.ok()) return std::nullopt;
  // Responses from pre-extension peers end here (point-estimate policy,
  // zero-width distributions). Any extension bytes must decode completely
  // and validly or the whole frame is rejected.
  if (r.remaining() > 0) {
    const uint8_t policy_byte = r.TakeU8();
    if (!r.ok() || policy_byte > kMaxPolicyByte) return std::nullopt;
    result.policy = static_cast<core::PlacementPolicy>(policy_byte);
    for (uint32_t i = 0; i < count; ++i) {
      core::CostDistribution distribution;
      distribution.mean = r.TakeF64();
      distribution.low = r.TakeF64();
      distribution.high = r.TakeF64();
      const uint8_t dflags = r.TakeU8();
      const double score = r.TakeF64();
      if (!r.ok()) return std::nullopt;
      if (!std::isfinite(distribution.mean) ||
          !std::isfinite(distribution.low) ||
          !std::isfinite(distribution.high) ||
          distribution.low > distribution.high || std::isnan(score)) {
        return std::nullopt;  // +inf score = "not estimable" is legal
      }
      distribution.stale = (dflags & kFlagDistStale) != 0;
      distribution.degraded = (dflags & kFlagDistDegraded) != 0;
      distribution.has_interval = (dflags & kFlagDistHasInterval) != 0;
      result.distributions.push_back(distribution);
      result.scores.push_back(score);
    }
    // Second extension: per-candidate serving generations. Optional after
    // the distribution block; a started run must carry exactly `count`.
    if (r.remaining() > 0) {
      for (uint32_t i = 0; i < count; ++i) {
        result.responses[i].model_generation = r.TakeU64();
      }
      if (!r.ok()) return std::nullopt;
    }
  }
  if (!r.AtEnd()) return std::nullopt;
  // chosen must index the candidate list or be the -1 "none estimable"
  // sentinel; anything else is a corrupt frame even though every element
  // decoded.
  if (result.chosen < -1 ||
      result.chosen >= static_cast<int>(result.responses.size())) {
    return std::nullopt;
  }
  return result;
}

// ---- Feedback ---------------------------------------------------------------

std::vector<uint8_t> EncodeReportActual(const runtime::FeedbackReport& report) {
  WireWriter w;
  w.PutString(report.site);
  w.PutU8(static_cast<uint8_t>(report.class_id));
  w.PutF64(report.actual_cost);
  w.PutF64(report.probing_cost);
  w.PutU64(report.model_generation);
  w.PutU16(static_cast<uint16_t>(
      std::min<size_t>(report.features.size(), kMaxFeatures)));
  for (size_t i = 0; i < report.features.size() && i < kMaxFeatures; ++i) {
    w.PutF64(report.features[i]);
  }
  return w.Take();
}

std::optional<runtime::FeedbackReport> DecodeReportActualPayload(
    const std::vector<uint8_t>& payload, WireError* error) {
  WireReader r(payload);
  runtime::FeedbackReport report;
  report.site = r.TakeString(kMaxSiteNameBytes);
  const uint8_t class_byte = r.TakeU8();
  report.actual_cost = r.TakeF64();
  report.probing_cost = r.TakeF64();
  report.model_generation = r.TakeU64();
  const uint16_t n_features = r.TakeU16();
  if (r.ok() && n_features > kMaxFeatures) {
    Fail(error, WireError::kInvalidRequest);
    return std::nullopt;
  }
  report.features.reserve(n_features);
  for (uint16_t i = 0; i < n_features && r.ok(); ++i) {
    report.features.push_back(r.TakeF64());
  }
  if (!r.AtEnd()) {
    Fail(error, WireError::kMalformedFrame);
    return std::nullopt;
  }
  // Semantic boundary: feedback must be a priceable observation. A
  // non-positive cost, anything non-finite, or a class outside the enum is
  // refused before it can reach the adaptation path.
  if (class_byte > kMaxClassByte || report.site.empty() ||
      !std::isfinite(report.actual_cost) || report.actual_cost <= 0.0 ||
      std::isnan(report.probing_cost) ||
      report.probing_cost == std::numeric_limits<double>::infinity()) {
    Fail(error, WireError::kInvalidRequest);
    return std::nullopt;
  }
  for (const double f : report.features) {
    if (!std::isfinite(f)) {
      Fail(error, WireError::kInvalidRequest);
      return std::nullopt;
    }
  }
  report.class_id = static_cast<core::QueryClassId>(class_byte);
  return report;
}

std::vector<uint8_t> EncodeReportActualAck(bool accepted) {
  WireWriter w;
  w.PutU8(accepted ? 1 : 0);
  return w.Take();
}

std::optional<bool> DecodeReportActualAckPayload(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  const uint8_t accepted = r.TakeU8();
  if (!r.AtEnd() || accepted > 1) return std::nullopt;
  return accepted == 1;
}

// ---- Errors -----------------------------------------------------------------

std::vector<uint8_t> EncodeErrorBody(const ErrorBody& body) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(body.code));
  std::string message = body.message;
  if (message.size() > kMaxErrorMessageBytes) {
    message.resize(kMaxErrorMessageBytes);
  }
  w.PutString(message);
  return w.Take();
}

std::optional<ErrorBody> DecodeErrorBodyPayload(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ErrorBody body;
  const uint8_t code = r.TakeU8();
  body.message = r.TakeString(kMaxErrorMessageBytes);
  if (!r.AtEnd() || code > static_cast<uint8_t>(WireError::kInternal)) {
    return std::nullopt;
  }
  body.code = static_cast<WireError>(code);
  return body;
}

std::vector<uint8_t> EncodeErrorFrame(uint32_t request_id, WireError code,
                                      const std::string& message) {
  return EncodeFrame(MessageType::kError, request_id,
                     EncodeErrorBody({code, message}));
}

}  // namespace mscm::net
