#include "net/served_runtime.h"

#include <atomic>
#include <cmath>

#include "common/rng.h"
#include "core/cost_model.h"
#include "core/explanatory.h"

namespace mscm::net {

namespace {

// A fitted 4-state model over the class's first three variables with
// synthetic coefficients — structurally identical to a paper-derived model
// (state lookup + compiled per-state row evaluation).
core::CostModel MakeModel(core::QueryClassId cls, uint64_t seed) {
  const size_t n_features = core::VariableSet::ForClass(cls).size();
  constexpr int kStates = 4;
  core::ObservationSet obs;
  Rng rng(seed);
  for (int s = 0; s < kStates; ++s) {
    for (int i = 0; i < 50; ++i) {
      core::Observation o;
      o.probing_cost = s + 0.5;
      o.features.assign(n_features, 0.0);
      for (size_t j = 0; j < 3 && j < n_features; ++j) {
        o.features[j] = rng.Uniform(1.0, 10.0);
      }
      o.cost = (s + 1.0) * (0.5 * o.features[0] + 0.2 * o.features[1] +
                            0.1 * o.features[2]);
      obs.push_back(std::move(o));
    }
  }
  return core::FitCostModel(
      cls, obs, {0, 1, 2},
      core::ContentionStates::FromBoundaries({1.0, 2.0, 3.0}),
      core::QualitativeForm::kGeneral);
}

// What the refresh daemon samples when a key drifts: a cheap synthetic
// environment whose cost law roughly matches the registered models, so
// re-derivations succeed without a simulated site.
class SyntheticSource : public core::ObservationSource {
 public:
  explicit SyntheticSource(uint64_t seed, core::QueryClassId cls)
      : rng_(seed), cls_(cls) {}

  core::Observation Draw() override {
    core::Observation o;
    o.probing_cost = rng_.Uniform(0.0, 4.0);
    o.features.assign(core::VariableSet::ForClass(cls_).size(), 0.0);
    for (size_t j = 0; j < 3 && j < o.features.size(); ++j) {
      o.features[j] = rng_.Uniform(1.0, 10.0);
    }
    o.cost = (1.0 + o.probing_cost) *
             (0.5 * o.features[0] + 0.2 * o.features[1] + 0.3);
    return o;
  }

 private:
  Rng rng_;
  core::QueryClassId cls_;
};

}  // namespace

ServedRuntime::ServedRuntime(ServedRuntimeConfig config)
    : config_(std::move(config)) {}

ServedRuntime::~ServedRuntime() { Shutdown(); }

bool ServedRuntime::Start(std::string* error) {
  runtime::EstimationServiceConfig service_config;
  service_config.worker_threads = config_.worker_threads;
  service_config.probe_ttl = std::chrono::seconds(5);
  service_config.probe_interval = config_.probe_interval;
  service_config.cache.capacity_per_thread = 4096;
  service_ = std::make_unique<runtime::EstimationService>(service_config);

  const std::vector<core::QueryClassId> classes = {
      core::QueryClassId::kUnarySeqScan, core::QueryClassId::kJoinNoIndex};
  uint64_t seed = config_.seed;
  for (size_t i = 0; i < config_.sites; ++i) {
    const std::string site = "site" + std::to_string(i);
    for (const core::QueryClassId cls : classes) {
      service_->RegisterModel(site, MakeModel(cls, seed++));
    }
    // A drifting-but-bounded contention signal: the site wanders across its
    // four probing-cost states. Only the prober thread calls this.
    auto tick = std::make_shared<std::atomic<uint64_t>>(i * 7);
    const double base = 0.5 + static_cast<double>(i % 4);
    service_->RegisterSite(site, [tick, base] {
      const uint64_t t = tick->fetch_add(1, std::memory_order_relaxed);
      return base + 0.4 * std::sin(static_cast<double>(t) * 0.1);
    });
    service_->ProbeNow(site);
  }

  if (config_.refresh) {
    daemon_ = std::make_unique<runtime::ModelRefreshDaemon>(service_.get());
    for (size_t i = 0; i < config_.sites; ++i) {
      const std::string site = "site" + std::to_string(i);
      for (const core::QueryClassId cls : classes) {
        sources_.push_back(std::make_unique<SyntheticSource>(seed++, cls));
        daemon_->Watch(site, cls, sources_.back().get());
      }
    }
  }

  EstimateServerConfig server_config = config_.server;
  if (config_.adaptation) {
    runtime::AdaptationConfig adaptation_config = config_.adaptation_config;
    adaptation_config.start_thread = true;
    adaptation_ = std::make_unique<runtime::AdaptationController>(
        service_.get(), daemon_.get(), adaptation_config);
    // Record() is the zero-shared-RMW fast path; safe to call from any
    // server worker. The controller drains on its own background thread.
    runtime::AdaptationController* controller = adaptation_.get();
    server_config.feedback_handler =
        [controller](const runtime::FeedbackReport& report) {
          return controller->Record(report);
        };
  }

  server_ = std::make_unique<EstimateServer>(service_.get(), server_config);
  return server_->Start(error);
}

void ServedRuntime::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // The order is the contract — see the header comment. The stopped objects
  // stay alive so callers can still read final stats and the bound port;
  // ~ServedRuntime destroys members in reverse declaration order, which
  // keeps the ThreadPool (inside the service) joining last.
  if (server_ != nullptr) server_->Stop();
  // After the server drains, no worker can call Record(); the controller's
  // final drain may still escalate into the daemon, so it stops first.
  if (adaptation_ != nullptr) adaptation_->Stop();
  daemon_.reset();
  if (service_ != nullptr) service_->StopProbing();
}

uint16_t ServedRuntime::port() const {
  return server_ != nullptr ? server_->port() : 0;
}

}  // namespace mscm::net
