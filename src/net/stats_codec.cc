#include "net/stats_codec.h"

#include <iterator>

#include "common/str_util.h"
#include "net/wire_format.h"

namespace mscm::net {

namespace {

constexpr uint8_t kTagU64 = 0;
constexpr uint8_t kTagF64 = 1;

struct HistSubField {
  const char* suffix;
  double runtime::LatencyHistogram::Snapshot::*field;
};

const HistSubField kHistSubFields[] = {
    {".mean_s", &runtime::LatencyHistogram::Snapshot::mean_seconds},
    {".p50_s", &runtime::LatencyHistogram::Snapshot::p50_seconds},
    {".p90_s", &runtime::LatencyHistogram::Snapshot::p90_seconds},
    {".p99_s", &runtime::LatencyHistogram::Snapshot::p99_seconds},
    {".max_s", &runtime::LatencyHistogram::Snapshot::max_bucket_seconds},
};

void PutCounter(WireWriter& w, const std::string& key, uint64_t value) {
  w.PutString(key);
  w.PutU8(kTagU64);
  w.PutU64(value);
}

void PutGauge(WireWriter& w, const std::string& key, double value) {
  w.PutString(key);
  w.PutU8(kTagF64);
  w.PutF64(value);
}

}  // namespace

std::string WireStats::ToString() const {
  std::string out;
  for (const auto& [key, value] : counters) {
    out += Format("%s=%llu\n", key.c_str(),
                  static_cast<unsigned long long>(value));
  }
  for (const auto& [key, value] : gauges) {
    out += Format("%s=%g\n", key.c_str(), value);
  }
  return out;
}

std::vector<uint8_t> EncodeStats(
    const runtime::RuntimeStatsSnapshot& snap,
    const std::map<std::string, uint64_t>& extra_counters) {
  WireWriter w;
  size_t entries = runtime::StatsCounterFields().size() +
                   runtime::StatsGaugeFields().size() + extra_counters.size();
  for (const auto& hist : runtime::StatsHistogramFields()) {
    (void)hist;
    entries += 1 + std::size(kHistSubFields);  // count + scalar sub-keys
  }
  w.PutU32(static_cast<uint32_t>(entries));
  for (const auto& field : runtime::StatsCounterFields()) {
    PutCounter(w, field.name, snap.*(field.field));
  }
  for (const auto& field : runtime::StatsGaugeFields()) {
    // Signed gauges ride the f64 slot: every gauge in the snapshot is far
    // inside the 53-bit exact-integer range of a double.
    PutGauge(w, field.name, static_cast<double>(snap.*(field.field)));
  }
  for (const auto& hist : runtime::StatsHistogramFields()) {
    const auto& h = snap.*(hist.field);
    PutCounter(w, std::string(hist.name) + ".count", h.count);
    for (const auto& sub : kHistSubFields) {
      PutGauge(w, std::string(hist.name) + sub.suffix, h.*(sub.field));
    }
  }
  for (const auto& [key, value] : extra_counters) PutCounter(w, key, value);
  return w.Take();
}

std::optional<WireStats> DecodeStatsPayload(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  const uint32_t count = r.TakeU32();
  if (!r.ok() || count > kMaxStatsEntries) return std::nullopt;
  WireStats stats;
  for (uint32_t i = 0; i < count; ++i) {
    const std::string key = r.TakeString(kMaxStatsKeyBytes);
    const uint8_t tag = r.TakeU8();
    if (!r.ok() || key.empty()) return std::nullopt;
    if (tag == kTagU64) {
      stats.counters[key] = r.TakeU64();
    } else if (tag == kTagF64) {
      stats.gauges[key] = r.TakeF64();
    } else {
      return std::nullopt;
    }
    if (!r.ok()) return std::nullopt;
  }
  if (!r.AtEnd()) return std::nullopt;
  return stats;
}

runtime::RuntimeStatsSnapshot ToSnapshot(const WireStats& stats) {
  runtime::RuntimeStatsSnapshot snap;
  auto counter = [&stats](const std::string& key) -> uint64_t {
    auto it = stats.counters.find(key);
    return it == stats.counters.end() ? 0 : it->second;
  };
  auto gauge = [&stats](const std::string& key) -> double {
    auto it = stats.gauges.find(key);
    return it == stats.gauges.end() ? 0.0 : it->second;
  };
  for (const auto& field : runtime::StatsCounterFields()) {
    snap.*(field.field) = counter(field.name);
  }
  for (const auto& field : runtime::StatsGaugeFields()) {
    snap.*(field.field) = static_cast<int64_t>(gauge(field.name));
  }
  for (const auto& hist : runtime::StatsHistogramFields()) {
    auto& h = snap.*(hist.field);
    h.count = counter(std::string(hist.name) + ".count");
    for (const auto& sub : kHistSubFields) {
      h.*(sub.field) = gauge(std::string(hist.name) + sub.suffix);
    }
  }
  return snap;
}

}  // namespace mscm::net
