// mscm_served — the MDBS cost-estimation agent as a network server.
//
// Stands up a synthetic multi-site federation (derived multi-state cost
// models + background contention probing + drift-triggered refresh) and
// serves the binary estimation protocol on a TCP port until SIGINT/SIGTERM,
// then performs the ordered graceful shutdown (drain → daemon → probers →
// pool) and prints final wire + runtime stats.
//
//   mscm_served [--port N] [--address A] [--sites N] [--io-threads N]
//               [--workers N] [--max-inflight N] [--probe-interval-ms N]
//               [--no-refresh] [--no-adaptation] [--quiet]
//
// With --port 0 (the default) an ephemeral port is chosen and announced on
// stdout as "mscm_served listening on ADDR:PORT" — scripted harnesses
// (tests/net_smoke.sh) parse that line.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/served_runtime.h"

namespace {

std::sig_atomic_t volatile g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

long ArgLong(int argc, char** argv, const char* flag, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

const char* ArgStr(int argc, char** argv, const char* flag,
                   const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mscm;

  net::ServedRuntimeConfig config;
  config.server.port = static_cast<uint16_t>(ArgLong(argc, argv, "--port", 0));
  config.server.bind_address = ArgStr(argc, argv, "--address", "127.0.0.1");
  config.server.io_threads =
      static_cast<int>(ArgLong(argc, argv, "--io-threads", 2));
  config.server.max_inflight =
      static_cast<size_t>(ArgLong(argc, argv, "--max-inflight", 256));
  config.sites = static_cast<size_t>(ArgLong(argc, argv, "--sites", 4));
  config.worker_threads =
      static_cast<int>(ArgLong(argc, argv, "--workers", 2));
  config.probe_interval = std::chrono::milliseconds(
      ArgLong(argc, argv, "--probe-interval-ms", 50));
  config.refresh = !HasFlag(argc, argv, "--no-refresh");
  config.adaptation = !HasFlag(argc, argv, "--no-adaptation");
  const bool quiet = HasFlag(argc, argv, "--quiet");

  net::ServedRuntime served(config);
  std::string error;
  if (!served.Start(&error)) {
    std::fprintf(stderr, "mscm_served: start failed: %s\n", error.c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("mscm_served listening on %s:%u\n",
              config.server.bind_address.c_str(), served.port());
  std::printf("  sites=%zu io_threads=%d workers=%d max_inflight=%zu "
              "refresh=%s adaptation=%s\n",
              config.sites, config.server.io_threads, config.worker_threads,
              config.server.max_inflight, config.refresh ? "on" : "off",
              config.adaptation ? "on" : "off");
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (!quiet) std::printf("mscm_served: shutting down\n");
  const net::NetServerStatsSnapshot wire = served.server().Stats();
  const runtime::RuntimeStatsSnapshot stats = served.service().Stats();
  served.Shutdown();
  if (!quiet) {
    std::printf("wire: %s\n", wire.ToString().c_str());
    std::printf("runtime: %s\n", stats.ToString().c_str());
    if (served.adaptation() != nullptr) {
      std::printf("adaptation: %s\n",
                  served.adaptation()->Stats().ToString().c_str());
    }
  }
  return 0;
}
