#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mscm::net {

namespace {

RpcStatus Transport(const std::string& what) {
  RpcStatus s;
  s.code = RpcStatus::Code::kTransportError;
  s.message = what + ": " + std::strerror(errno);
  return s;
}

RpcStatus Protocol(const std::string& what) {
  RpcStatus s;
  s.code = RpcStatus::Code::kProtocolError;
  s.message = what;
  return s;
}

}  // namespace

NetClient::NetClient(NetClientConfig config) : config_(config) {}

NetClient::~NetClient() { Close(); }

bool NetClient::Connect(const std::string& host, uint16_t port,
                        std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address: " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    Close();
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (config_.recv_timeout.count() > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(config_.recv_timeout.count() / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((config_.recv_timeout.count() % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  assembler_ = FrameAssembler();
  return true;
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

RpcStatus NetClient::SendFrame(MessageType type, uint32_t request_id,
                               const std::vector<uint8_t>& payload) {
  if (fd_ < 0) return Transport("send on closed client");
  const std::vector<uint8_t> bytes = EncodeFrame(type, request_id, payload);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return Transport("send");
  }
  return {};
}

RpcStatus NetClient::ReadFrame(uint32_t expect_request_id, Frame* out) {
  uint8_t buf[65536];
  for (;;) {
    if (auto frame = assembler_.Next()) {
      if (frame->request_id != expect_request_id) {
        // One request in flight per call: any other id is a broken peer.
        Close();
        return Protocol("response for unexpected request id");
      }
      *out = std::move(*frame);
      return {};
    }
    if (assembler_.broken()) {
      Close();
      return Protocol(std::string("unframeable response stream: ") +
                      ToString(assembler_.error()));
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      assembler_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      Close();
      return Transport("connection closed by server");
    }
    if (errno == EINTR) continue;
    Close();
    return Transport(errno == EAGAIN || errno == EWOULDBLOCK ? "recv timeout"
                                                             : "recv");
  }
}

RpcStatus NetClient::Call(MessageType send_type,
                          const std::vector<uint8_t>& payload,
                          MessageType want,
                          std::vector<uint8_t>* response_payload) {
  const uint32_t id = next_request_id_++;
  RpcStatus status = SendFrame(send_type, id, payload);
  if (!status.ok()) return status;
  Frame frame;
  status = ReadFrame(id, &frame);
  if (!status.ok()) return status;
  if (frame.type == static_cast<uint8_t>(MessageType::kError)) {
    auto body = DecodeErrorBodyPayload(frame.payload);
    if (!body.has_value()) {
      Close();
      return Protocol("undecodable error frame");
    }
    RpcStatus err;
    err.code = RpcStatus::Code::kErrorFrame;
    err.wire_error = body->code;
    err.message = body->message;
    return err;
  }
  if (frame.type != static_cast<uint8_t>(want)) {
    Close();
    return Protocol(std::string("expected ") + ToString(want) + " frame");
  }
  *response_payload = std::move(frame.payload);
  return {};
}

RpcStatus NetClient::Estimate(const runtime::EstimateRequest& request,
                              runtime::EstimateResponse* out) {
  WireWriter w;
  EncodeEstimateRequest(request, w);
  std::vector<uint8_t> payload;
  RpcStatus status = Call(MessageType::kEstimateRequest, w.bytes(),
                          MessageType::kEstimateResponse, &payload);
  if (!status.ok()) return status;
  auto response = DecodeEstimateResponsePayload(payload);
  if (!response.has_value()) {
    Close();
    return Protocol("undecodable EstimateResponse");
  }
  *out = *response;
  return {};
}

RpcStatus NetClient::EstimateBatch(
    const std::vector<runtime::EstimateRequest>& requests,
    std::vector<runtime::EstimateResponse>* out) {
  std::vector<uint8_t> payload;
  RpcStatus status =
      Call(MessageType::kEstimateBatchRequest,
           EncodeEstimateBatchRequest(requests),
           MessageType::kEstimateBatchResponse, &payload);
  if (!status.ok()) return status;
  auto responses = DecodeEstimateBatchResponsePayload(payload);
  if (!responses.has_value()) {
    Close();
    return Protocol("undecodable EstimateBatchResponse");
  }
  *out = std::move(*responses);
  return {};
}

RpcStatus NetClient::ChoosePlacement(
    const std::vector<runtime::PlacementCandidate>& candidates,
    runtime::PlacementResult* out) {
  return ChoosePlacement(candidates, runtime::PlacementOptions{}, out);
}

RpcStatus NetClient::ChoosePlacement(
    const std::vector<runtime::PlacementCandidate>& candidates,
    const runtime::PlacementOptions& options, runtime::PlacementResult* out) {
  std::vector<uint8_t> payload;
  RpcStatus status =
      Call(MessageType::kPlacementRequest,
           EncodePlacementRequest(candidates, options),
           MessageType::kPlacementResponse, &payload);
  if (!status.ok()) return status;
  auto result = DecodePlacementResponsePayload(payload);
  if (!result.has_value()) {
    Close();
    return Protocol("undecodable PlacementResponse");
  }
  *out = std::move(*result);
  return {};
}

RpcStatus NetClient::Stats(WireStats* out) {
  std::vector<uint8_t> payload;
  RpcStatus status = Call(MessageType::kStatsRequest, {},
                          MessageType::kStatsResponse, &payload);
  if (!status.ok()) return status;
  auto stats = DecodeStatsPayload(payload);
  if (!stats.has_value()) {
    Close();
    return Protocol("undecodable StatsResponse");
  }
  *out = std::move(*stats);
  return {};
}

RpcStatus NetClient::ReportActual(const runtime::FeedbackReport& report,
                                  bool* accepted) {
  std::vector<uint8_t> payload;
  RpcStatus status = Call(MessageType::kReportActual, EncodeReportActual(report),
                          MessageType::kReportActualAck, &payload);
  if (!status.ok()) return status;
  auto ack = DecodeReportActualAckPayload(payload);
  if (!ack.has_value()) {
    Close();
    return Protocol("undecodable ReportActualAck");
  }
  *accepted = *ack;
  return {};
}

RpcStatus NetClient::RoundTrip(MessageType type,
                               const std::vector<uint8_t>& payload,
                               Frame* out) {
  const uint32_t id = next_request_id_++;
  RpcStatus status = SendFrame(type, id, payload);
  if (!status.ok()) return status;
  return ReadFrame(id, out);
}

}  // namespace mscm::net
