#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/str_util.h"
#include "net/stats_codec.h"

namespace mscm::net {

// ---- Internal structures ----------------------------------------------------

struct EstimateServer::Counters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> malformed_frames{0};
  std::atomic<uint64_t> unknown_type_frames{0};
  std::atomic<uint64_t> requests_dispatched{0};
  std::atomic<uint64_t> requests_completed{0};
  std::atomic<uint64_t> responses_sent{0};
  std::atomic<uint64_t> error_frames_sent{0};
  std::atomic<uint64_t> invalid_requests{0};
  std::atomic<uint64_t> overload_shed{0};
  std::atomic<uint64_t> shutdown_shed{0};
  std::atomic<uint64_t> internal_errors{0};
  std::atomic<uint64_t> read_limit_closes{0};
  std::atomic<uint64_t> write_limit_closes{0};
  std::atomic<uint64_t> dropped_responses{0};
  std::atomic<uint64_t> estimates{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batch_items{0};
  std::atomic<uint64_t> placements{0};
  std::atomic<uint64_t> stats_requests{0};
  std::atomic<uint64_t> feedback_reports{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};
};

namespace {
void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
  c.fetch_add(n, std::memory_order_relaxed);
}
}  // namespace

struct EstimateServer::Connection {
  explicit Connection(uint32_t max_payload) : assembler(max_payload) {}

  int fd = -1;
  size_t loop_index = 0;

  // Read side — touched only by the owning IO loop.
  FrameAssembler assembler;
  bool reading = true;           // EPOLLIN armed
  bool write_armed = false;      // EPOLLOUT armed
  bool close_after_flush = false;

  // Write side — workers append under the mutex, the loop flushes under it.
  std::mutex write_mutex;
  std::vector<uint8_t> write_buf;
  size_t write_pos = 0;

  std::atomic<bool> closed{false};
  std::atomic<bool> want_write{false};
  std::atomic<bool> kill{false};  // loop closes it at the next wake
};

struct EstimateServer::Loop {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  bool reads_disabled = false;  // draining applied (loop thread)

  std::mutex conns_mutex;
  std::map<int, std::shared_ptr<Connection>> conns;
};

// ---- Stats ------------------------------------------------------------------

std::string NetServerStatsSnapshot::ToString() const {
  return Format(
      "conns{accepted=%llu rejected=%llu closed=%llu} frames=%llu "
      "dispatched=%llu completed=%llu responses=%llu errors=%llu "
      "shed{overload=%llu shutdown=%llu} invalid=%llu malformed=%llu "
      "unknown_type=%llu internal=%llu limit_closes{read=%llu write=%llu} "
      "dropped=%llu served{est=%llu batch=%llu items=%llu place=%llu "
      "stats=%llu feedback=%llu} bytes{in=%llu out=%llu}",
      static_cast<unsigned long long>(connections_accepted),
      static_cast<unsigned long long>(connections_rejected),
      static_cast<unsigned long long>(connections_closed),
      static_cast<unsigned long long>(frames_received),
      static_cast<unsigned long long>(requests_dispatched),
      static_cast<unsigned long long>(requests_completed),
      static_cast<unsigned long long>(responses_sent),
      static_cast<unsigned long long>(error_frames_sent),
      static_cast<unsigned long long>(overload_shed),
      static_cast<unsigned long long>(shutdown_shed),
      static_cast<unsigned long long>(invalid_requests),
      static_cast<unsigned long long>(malformed_frames),
      static_cast<unsigned long long>(unknown_type_frames),
      static_cast<unsigned long long>(internal_errors),
      static_cast<unsigned long long>(read_limit_closes),
      static_cast<unsigned long long>(write_limit_closes),
      static_cast<unsigned long long>(dropped_responses),
      static_cast<unsigned long long>(estimates),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batch_items),
      static_cast<unsigned long long>(placements),
      static_cast<unsigned long long>(stats_requests),
      static_cast<unsigned long long>(feedback_reports),
      static_cast<unsigned long long>(bytes_received),
      static_cast<unsigned long long>(bytes_sent));
}

NetServerStatsSnapshot EstimateServer::Stats() const {
  const Counters& c = *counters_;
  NetServerStatsSnapshot s;
  s.connections_accepted = c.connections_accepted.load();
  s.connections_rejected = c.connections_rejected.load();
  s.connections_closed = c.connections_closed.load();
  s.frames_received = c.frames_received.load();
  s.malformed_frames = c.malformed_frames.load();
  s.unknown_type_frames = c.unknown_type_frames.load();
  s.requests_dispatched = c.requests_dispatched.load();
  s.requests_completed = c.requests_completed.load();
  s.responses_sent = c.responses_sent.load();
  s.error_frames_sent = c.error_frames_sent.load();
  s.invalid_requests = c.invalid_requests.load();
  s.overload_shed = c.overload_shed.load();
  s.shutdown_shed = c.shutdown_shed.load();
  s.internal_errors = c.internal_errors.load();
  s.read_limit_closes = c.read_limit_closes.load();
  s.write_limit_closes = c.write_limit_closes.load();
  s.dropped_responses = c.dropped_responses.load();
  s.estimates = c.estimates.load();
  s.batches = c.batches.load();
  s.batch_items = c.batch_items.load();
  s.placements = c.placements.load();
  s.stats_requests = c.stats_requests.load();
  s.feedback_reports = c.feedback_reports.load();
  s.bytes_received = c.bytes_received.load();
  s.bytes_sent = c.bytes_sent.load();
  return s;
}

// ---- Lifecycle --------------------------------------------------------------

EstimateServer::EstimateServer(runtime::EstimationService* service,
                               EstimateServerConfig config)
    : service_(service),
      config_(std::move(config)),
      counters_(std::make_unique<Counters>()) {}

EstimateServer::~EstimateServer() { Stop(); }

bool EstimateServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& loop : loops_) {
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->wake_fd >= 0) ::close(loop->wake_fd);
    }
    loops_.clear();
    return false;
  };

  if (started_.load()) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton(" + config_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  const int n_loops = std::max(1, config_.io_threads);
  for (int i = 0; i < n_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) {
      loops_.push_back(std::move(loop));
      return fail("epoll_create1");
    }
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->wake_fd < 0) {
      loops_.push_back(std::move(loop));
      return fail("eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops_.push_back(std::move(loop));
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail("epoll_ctl(listener)");
  }

  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { LoopThread(i); });
  }
  started_.store(true);
  return true;
}

void EstimateServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!started_.load() || stopped_.load()) return;

  // Phase 1: stop admitting. Accepts are refused, loops disable EPOLLIN on
  // every connection, so no new frame can decode. Frames already decoded
  // were answered or dispatched synchronously at decode time.
  draining_.store(true);
  for (auto& loop : loops_) WakeLoop(*loop);

  // Phase 2: drain — every dispatched request must complete. Tasks are
  // finite service computations on a live pool, so this terminates.
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] {
      return inflight_.load(std::memory_order_seq_cst) == 0;
    });
  }

  // Phase 3: flush queued responses to their peers (bounded: a peer that
  // stopped reading forfeits its tail).
  const auto deadline =
      std::chrono::steady_clock::now() + config_.flush_timeout;
  while (std::chrono::steady_clock::now() < deadline && !AllWritesFlushed()) {
    for (auto& loop : loops_) WakeLoop(*loop);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Phase 4: stop the loops and close everything.
  stopping_.store(true);
  for (auto& loop : loops_) WakeLoop(*loop);
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> lock(loop->conns_mutex);
    for (auto& [fd, conn] : loop->conns) {
      if (!conn->closed.exchange(true)) {
        ::close(fd);
        Bump(counters_->connections_closed);
      }
    }
    loop->conns.clear();
    ::close(loop->epoll_fd);
    ::close(loop->wake_fd);
  }
  stopped_.store(true);
}

// ---- Event loop -------------------------------------------------------------

void EstimateServer::WakeLoop(Loop& loop) {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(loop.wake_fd, &one, sizeof(one));
}

void EstimateServer::LoopThread(size_t index) {
  Loop& loop = *loops_[index];
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epoll_fd, events, 64, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (draining_.load(std::memory_order_acquire) && !loop.reads_disabled) {
      // Disable reads everywhere: the admission gate slams shut once.
      loop.reads_disabled = true;
      std::vector<std::shared_ptr<Connection>> conns;
      {
        std::lock_guard<std::mutex> lock(loop.conns_mutex);
        for (auto& [fd, conn] : loop.conns) conns.push_back(conn);
      }
      for (auto& conn : conns) {
        conn->reading = false;
        epoll_event ev{};
        ev.events = conn->write_armed ? EPOLLOUT : 0;
        ev.data.fd = conn->fd;
        ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
      }
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.wake_fd) {
        uint64_t drained;
        while (::read(loop.wake_fd, &drained, sizeof(drained)) > 0) {
        }
        ApplyWriteInterest(loop);
        continue;
      }
      if (fd == listen_fd_ && index == 0) {
        AcceptReady();
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(loop.conns_mutex);
        auto it = loop.conns.find(fd);
        if (it != loop.conns.end()) conn = it->second;
      }
      if (conn == nullptr) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(loop, conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0 && conn->reading) {
        OnReadable(loop, conn);
      }
      if (conn->closed.load(std::memory_order_relaxed)) continue;
      if ((events[i].events & EPOLLOUT) != 0) OnWritable(loop, conn);
    }
  }
}

void EstimateServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or transient accept failure: try later
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    if (num_connections_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      Bump(counters_->connections_rejected);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>(config_.max_frame_payload);
    conn->fd = fd;
    const size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    conn->loop_index = target;
    Loop& loop = *loops_[target];
    {
      std::lock_guard<std::mutex> lock(loop.conns_mutex);
      loop.conns[fd] = conn;
    }
    num_connections_.fetch_add(1, std::memory_order_relaxed);
    Bump(counters_->connections_accepted);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseConnection(loop, conn);
    }
  }
}

void EstimateServer::OnReadable(Loop& loop,
                                const std::shared_ptr<Connection>& conn) {
  uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      Bump(counters_->bytes_received, static_cast<uint64_t>(n));
      if (!conn->assembler.Feed(buf, static_cast<size_t>(n))) {
        // Stream poisoned: one typed error, flush it, close. Reading stops
        // now so a garbage firehose cannot keep the connection busy.
        Bump(counters_->malformed_frames);
        QueueError(conn, 0, conn->assembler.error(), "unframeable bytes");
        conn->reading = false;
        conn->close_after_flush = true;
        epoll_event ev{};
        ev.events = conn->write_armed ? EPOLLOUT : 0;
        ev.data.fd = conn->fd;
        ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
        return;
      }
      while (auto frame = conn->assembler.Next()) {
        HandleFrame(loop, conn, std::move(*frame));
        if (conn->closed.load(std::memory_order_relaxed)) return;
      }
      if (conn->assembler.buffered_bytes() > config_.max_read_buffer) {
        Bump(counters_->read_limit_closes);
        CloseConnection(loop, conn);
        return;
      }
      continue;
    }
    if (n == 0) {
      CloseConnection(loop, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(loop, conn);
    return;
  }
}

void EstimateServer::OnWritable(Loop& loop,
                                const std::shared_ptr<Connection>& conn) {
  bool empty = false;
  bool broken = false;
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    while (conn->write_pos < conn->write_buf.size()) {
      const ssize_t n =
          ::write(conn->fd, conn->write_buf.data() + conn->write_pos,
                  conn->write_buf.size() - conn->write_pos);
      if (n > 0) {
        Bump(counters_->bytes_sent, static_cast<uint64_t>(n));
        conn->write_pos += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) broken = true;
      break;
    }
    if (conn->write_pos == conn->write_buf.size()) {
      conn->write_buf.clear();
      conn->write_pos = 0;
      conn->want_write.store(false, std::memory_order_release);
      empty = true;
    }
  }
  if (broken) {
    CloseConnection(loop, conn);
    return;
  }
  if (empty) {
    epoll_event ev{};
    ev.events = conn->reading ? EPOLLIN : 0;
    ev.data.fd = conn->fd;
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->write_armed = false;
    if (conn->close_after_flush) CloseConnection(loop, conn);
  }
}

void EstimateServer::ApplyWriteInterest(Loop& loop) {
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(loop.conns_mutex);
    for (auto& [fd, conn] : loop.conns) conns.push_back(conn);
  }
  for (auto& conn : conns) {
    if (conn->kill.load(std::memory_order_acquire)) {
      CloseConnection(loop, conn);
      continue;
    }
    if (conn->want_write.load(std::memory_order_acquire) &&
        !conn->write_armed) {
      epoll_event ev{};
      ev.events = static_cast<uint32_t>(conn->reading ? EPOLLIN : 0) |
                  EPOLLOUT;
      ev.data.fd = conn->fd;
      if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
        conn->write_armed = true;
      }
    }
  }
}

void EstimateServer::CloseConnection(Loop& loop,
                                     const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true)) return;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  {
    std::lock_guard<std::mutex> lock(loop.conns_mutex);
    loop.conns.erase(conn->fd);
  }
  num_connections_.fetch_sub(1, std::memory_order_relaxed);
  Bump(counters_->connections_closed);
}

// ---- Frame handling ---------------------------------------------------------

void EstimateServer::HandleFrame(Loop& loop,
                                 const std::shared_ptr<Connection>& conn,
                                 Frame frame) {
  (void)loop;
  Bump(counters_->frames_received);
  const uint32_t id = frame.request_id;
  if (draining_.load(std::memory_order_acquire)) {
    Bump(counters_->shutdown_shed);
    QueueError(conn, id, WireError::kShuttingDown, "server draining");
    return;
  }
  if (!IsKnownMessageType(frame.type)) {
    Bump(counters_->unknown_type_frames);
    QueueError(conn, id, WireError::kUnknownType,
               Format("unknown message type %u", frame.type));
    return;
  }
  const MessageType type = static_cast<MessageType>(frame.type);
  if (type != MessageType::kEstimateRequest &&
      type != MessageType::kEstimateBatchRequest &&
      type != MessageType::kPlacementRequest &&
      type != MessageType::kStatsRequest &&
      type != MessageType::kReportActual) {
    Bump(counters_->invalid_requests);
    QueueError(conn, id, WireError::kInvalidRequest,
               std::string(ToString(type)) + " is not a request");
    return;
  }
  // Admission control: shed rather than queue without bound.
  const size_t in_flight =
      inflight_.fetch_add(1, std::memory_order_seq_cst);
  if (in_flight >= config_.max_inflight) {
    FinishInflightOnly();
    Bump(counters_->overload_shed);
    QueueError(conn, id, WireError::kOverloaded, "server overloaded");
    return;
  }
  Bump(counters_->requests_dispatched);
  auto shared_frame = std::make_shared<Frame>(std::move(frame));
  service_->worker_pool().Submit([this, conn, shared_frame] {
    ServeFrame(conn, *shared_frame);
    FinishRequest(conn);
  });
}

// Undo an admission increment that never became a dispatch.
void EstimateServer::FinishInflightOnly() {
  if (inflight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drain_cv_.notify_all();
  }
}

void EstimateServer::FinishRequest(const std::shared_ptr<Connection>& conn) {
  (void)conn;
  Bump(counters_->requests_completed);
  FinishInflightOnly();
}

void EstimateServer::ServeFrame(const std::shared_ptr<Connection>& conn,
                                const Frame& frame) {
  const uint32_t id = frame.request_id;
  const MessageType type = static_cast<MessageType>(frame.type);
  try {
    switch (type) {
      case MessageType::kEstimateRequest: {
        WireError err = WireError::kMalformedFrame;
        auto request = DecodeEstimateRequestPayload(frame.payload, &err);
        if (!request.has_value()) {
          CountBoundaryReject(err);
          QueueError(conn, id, err, "bad EstimateRequest");
          return;
        }
        const runtime::EstimateResponse response =
            service_->Estimate(*request);
        Bump(counters_->estimates);
        QueueResponse(conn,
                      EncodeFrame(MessageType::kEstimateResponse, id,
                                  EncodeEstimateResponsePayload(response)));
        return;
      }
      case MessageType::kEstimateBatchRequest: {
        WireError err = WireError::kMalformedFrame;
        auto requests = DecodeEstimateBatchRequestPayload(frame.payload, &err);
        if (!requests.has_value()) {
          CountBoundaryReject(err);
          QueueError(conn, id, err, "bad EstimateBatchRequest");
          return;
        }
        const std::vector<runtime::EstimateResponse> responses =
            service_->EstimateBatch(*requests);
        Bump(counters_->batches);
        Bump(counters_->batch_items, responses.size());
        QueueResponse(conn,
                      EncodeFrame(MessageType::kEstimateBatchResponse, id,
                                  EncodeEstimateBatchResponse(responses)));
        return;
      }
      case MessageType::kPlacementRequest: {
        WireError err = WireError::kMalformedFrame;
        runtime::PlacementOptions options;
        auto candidates =
            DecodePlacementRequestPayload(frame.payload, &err, &options);
        if (!candidates.has_value()) {
          CountBoundaryReject(err);
          QueueError(conn, id, err, "bad PlacementRequest");
          return;
        }
        const runtime::PlacementResult result =
            service_->ChoosePlacement(*candidates, options);
        Bump(counters_->placements);
        QueueResponse(conn, EncodeFrame(MessageType::kPlacementResponse, id,
                                        EncodePlacementResponse(result)));
        return;
      }
      case MessageType::kStatsRequest: {
        if (!frame.payload.empty()) {
          CountBoundaryReject(WireError::kMalformedFrame);
          QueueError(conn, id, WireError::kMalformedFrame,
                     "StatsRequest carries no payload");
          return;
        }
        Bump(counters_->stats_requests);
        QueueResponse(conn, EncodeFrame(MessageType::kStatsResponse, id,
                                        EncodeStats(service_->Stats(),
                                                    NetCounterEntries())));
        return;
      }
      case MessageType::kReportActual: {
        WireError err = WireError::kMalformedFrame;
        auto report = DecodeReportActualPayload(frame.payload, &err);
        if (!report.has_value()) {
          CountBoundaryReject(err);
          QueueError(conn, id, err, "bad ReportActual");
          return;
        }
        Bump(counters_->feedback_reports);
        // Feedback is advisory: an absent handler or a full buffer is an
        // accepted=false ack, never an error frame.
        const bool accepted = config_.feedback_handler != nullptr &&
                              config_.feedback_handler(*report);
        QueueResponse(conn, EncodeFrame(MessageType::kReportActualAck, id,
                                        EncodeReportActualAck(accepted)));
        return;
      }
      default:
        // Unreachable: HandleFrame admits only the five request types.
        QueueError(conn, id, WireError::kInternal, "bad dispatch");
        return;
    }
  } catch (...) {
    // The wire boundary contract: a request may fail, the server may not.
    Bump(counters_->internal_errors);
    QueueError(conn, id, WireError::kInternal, "exception serving request");
  }
}

void EstimateServer::CountBoundaryReject(WireError code) {
  if (code == WireError::kInvalidRequest) {
    Bump(counters_->invalid_requests);
  } else {
    Bump(counters_->malformed_frames);
  }
}

std::map<std::string, uint64_t> EstimateServer::NetCounterEntries() const {
  const NetServerStatsSnapshot s = Stats();
  return {
      {"net.connections_accepted", s.connections_accepted},
      {"net.connections_closed", s.connections_closed},
      {"net.frames_received", s.frames_received},
      {"net.requests_dispatched", s.requests_dispatched},
      {"net.requests_completed", s.requests_completed},
      {"net.responses_sent", s.responses_sent},
      {"net.error_frames_sent", s.error_frames_sent},
      {"net.invalid_requests", s.invalid_requests},
      {"net.malformed_frames", s.malformed_frames},
      {"net.overload_shed", s.overload_shed},
      {"net.shutdown_shed", s.shutdown_shed},
      {"net.dropped_responses", s.dropped_responses},
      {"net.estimates", s.estimates},
      {"net.batches", s.batches},
      {"net.batch_items", s.batch_items},
      {"net.placements", s.placements},
      {"net.stats_requests", s.stats_requests},
      {"net.feedback_reports", s.feedback_reports},
      {"net.bytes_received", s.bytes_received},
      {"net.bytes_sent", s.bytes_sent},
  };
}

// ---- Write path -------------------------------------------------------------

void EstimateServer::QueueResponse(const std::shared_ptr<Connection>& conn,
                                   std::vector<uint8_t> bytes) {
  Bump(counters_->responses_sent);
  QueueBytes(conn, std::move(bytes));
}

void EstimateServer::QueueError(const std::shared_ptr<Connection>& conn,
                                uint32_t request_id, WireError code,
                                const std::string& message) {
  Bump(counters_->error_frames_sent);
  QueueBytes(conn, EncodeErrorFrame(request_id, code, message));
}

void EstimateServer::QueueBytes(const std::shared_ptr<Connection>& conn,
                                std::vector<uint8_t> bytes) {
  if (conn->closed.load(std::memory_order_acquire)) {
    Bump(counters_->dropped_responses);
    return;
  }
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    const size_t pending = conn->write_buf.size() - conn->write_pos;
    if (pending + bytes.size() > config_.max_write_buffer) {
      overflow = true;
    } else {
      if (conn->write_pos > 0 && conn->write_pos == conn->write_buf.size()) {
        conn->write_buf.clear();
        conn->write_pos = 0;
      }
      conn->write_buf.insert(conn->write_buf.end(), bytes.begin(),
                             bytes.end());
    }
  }
  if (overflow) {
    // A peer that will not read its responses is disconnected, not buffered
    // without bound.
    Bump(counters_->write_limit_closes);
    conn->kill.store(true, std::memory_order_release);
  } else {
    conn->want_write.store(true, std::memory_order_release);
  }
  WakeLoop(*loops_[conn->loop_index]);
}

bool EstimateServer::AllWritesFlushed() const {
  for (const auto& loop : loops_) {
    std::vector<std::shared_ptr<Connection>> conns;
    {
      std::lock_guard<std::mutex> lock(loop->conns_mutex);
      for (const auto& [fd, conn] : loop->conns) conns.push_back(conn);
    }
    for (const auto& conn : conns) {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      if (conn->write_pos < conn->write_buf.size()) return false;
    }
  }
  return true;
}

}  // namespace mscm::net
