// Relational schema for the synthetic local databases.
//
// Tables hold 64-bit integer columns (the paper's experiment tables contain
// "tuples of random numbers"). Each column declares a storage byte width so
// tuple lengths vary across tables — tuple length is one of the secondary
// explanatory variables of the cost models (paper Table 3).

#ifndef MSCM_ENGINE_SCHEMA_H_
#define MSCM_ENGINE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace mscm::engine {

struct Column {
  std::string name;
  // Declared storage width in bytes (>= 8 for the int payload; wider values
  // emulate padded char/decimal columns so tuple lengths differ per table).
  int byte_width = 8;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const {
    MSCM_DCHECK(i < columns_.size());
    return columns_[i];
  }
  const std::vector<Column>& columns() const { return columns_; }

  // Index of the column with the given name; -1 if absent.
  int ColumnIndex(const std::string& name) const;

  // Total declared tuple width in bytes.
  int TupleBytes() const;

 private:
  std::vector<Column> columns_;
};

// A tuple is one value per schema column.
using Row = std::vector<int64_t>;

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_SCHEMA_H_
