#include "engine/query.h"

#include "common/str_util.h"

namespace mscm::engine {

std::string SelectQuery::ToString(const Schema& schema) const {
  std::vector<std::string> cols;
  if (projection.empty()) {
    cols.push_back("*");
  } else {
    for (int c : projection) {
      cols.push_back(schema.column(static_cast<size_t>(c)).name);
    }
  }
  return Format("select %s from %s where %s", Join(cols, ", ").c_str(),
                table.c_str(), predicate.ToString(schema).c_str());
}

}  // namespace mscm::engine
