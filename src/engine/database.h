// A local database: named tables plus their indexes.

#ifndef MSCM_ENGINE_DATABASE_H_
#define MSCM_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/index.h"
#include "engine/table.h"

namespace mscm::engine {

class Database {
 public:
  Database() = default;

  // Non-copyable (owns tables and indexes).
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // Adds a table; statistics are recomputed on insertion. Returns a stable
  // pointer to the stored table.
  Table* AddTable(Table table);

  // Creates an index on `table.column(col)`. A clustered index physically
  // sorts the table first (and therefore must be created before any
  // non-clustered index on the same table so row ids stay valid).
  void CreateIndex(const std::string& table_name, size_t col, bool clustered);

  const Table* FindTable(const std::string& name) const;
  Table* FindTableMutable(const std::string& name);

  // Indexes on `table_name` (possibly empty).
  const std::vector<std::unique_ptr<Index>>& IndexesOn(
      const std::string& table_name) const;

  // The index on (table, col), or nullptr.
  const Index* FindIndex(const std::string& table_name, size_t col) const;

  // Clustered index on the table, or nullptr.
  const Index* ClusteredIndexOn(const std::string& table_name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::vector<std::unique_ptr<Index>>> indexes_;
  static const std::vector<std::unique_ptr<Index>> kNoIndexes;
};

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_DATABASE_H_
