#include "engine/predicate.h"

#include <algorithm>
#include <limits>

#include "common/str_util.h"

namespace mscm::engine {

bool Condition::Matches(const Row& row) const {
  MSCM_DCHECK(column >= 0 && static_cast<size_t>(column) < row.size());
  const int64_t v = row[static_cast<size_t>(column)];
  switch (op) {
    case CompareOp::kEq:
      return v == lo;
    case CompareOp::kLt:
      return v < lo;
    case CompareOp::kLe:
      return v <= lo;
    case CompareOp::kGt:
      return v > lo;
    case CompareOp::kGe:
      return v >= lo;
    case CompareOp::kBetween:
      return v >= lo && v <= hi;
  }
  return false;
}

std::pair<int64_t, int64_t> Condition::KeyRange() const {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  switch (op) {
    case CompareOp::kEq:
      return {lo, lo};
    case CompareOp::kLt:
      return {kMin, lo - 1};
    case CompareOp::kLe:
      return {kMin, lo};
    case CompareOp::kGt:
      return {lo + 1, kMax};
    case CompareOp::kGe:
      return {lo, kMax};
    case CompareOp::kBetween:
      return {lo, hi};
  }
  return {kMin, kMax};
}

std::string Condition::ToString(const Schema& schema) const {
  const std::string& name =
      schema.column(static_cast<size_t>(column)).name;
  switch (op) {
    case CompareOp::kEq:
      return Format("%s = %lld", name.c_str(), static_cast<long long>(lo));
    case CompareOp::kLt:
      return Format("%s < %lld", name.c_str(), static_cast<long long>(lo));
    case CompareOp::kLe:
      return Format("%s <= %lld", name.c_str(), static_cast<long long>(lo));
    case CompareOp::kGt:
      return Format("%s > %lld", name.c_str(), static_cast<long long>(lo));
    case CompareOp::kGe:
      return Format("%s >= %lld", name.c_str(), static_cast<long long>(lo));
    case CompareOp::kBetween:
      return Format("%s between %lld and %lld", name.c_str(),
                    static_cast<long long>(lo), static_cast<long long>(hi));
  }
  return "?";
}

int Predicate::FindCondition(int column) const {
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (conditions_[i].column == column) return static_cast<int>(i);
  }
  return -1;
}

std::string Predicate::ToString(const Schema& schema) const {
  if (conditions_.empty()) return "true";
  std::vector<std::string> parts;
  parts.reserve(conditions_.size());
  for (const Condition& c : conditions_) parts.push_back(c.ToString(schema));
  return Join(parts, " and ");
}

double EstimateConditionSelectivity(const Table& table,
                                    const Condition& cond) {
  MSCM_CHECK(table.has_stats());
  const ColumnStats& s =
      table.column_stats(static_cast<size_t>(cond.column));
  const double span = static_cast<double>(s.max - s.min) + 1.0;
  if (span <= 1.0) return 1.0;
  auto [lo, hi] = cond.KeyRange();
  const double clamped_lo =
      std::max(static_cast<double>(lo), static_cast<double>(s.min));
  const double clamped_hi =
      std::min(static_cast<double>(hi), static_cast<double>(s.max));
  if (cond.op == CompareOp::kEq) {
    if (s.distinct <= 0) return 0.0;
    return 1.0 / static_cast<double>(s.distinct);
  }
  if (clamped_hi < clamped_lo) return 0.0;
  double sel = (clamped_hi - clamped_lo + 1.0) / span;
  return std::clamp(sel, 0.0, 1.0);
}

double EstimatePredicateSelectivity(const Table& table,
                                    const Predicate& pred) {
  double sel = 1.0;
  for (const Condition& c : pred.conditions()) {
    sel *= EstimateConditionSelectivity(table, c);
  }
  return sel;
}

}  // namespace mscm::engine
