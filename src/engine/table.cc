#include "engine/table.h"

#include <algorithm>
#include <unordered_set>

namespace mscm::engine {

size_t Table::RowsPerPage() const {
  const int tuple_bytes = schema_.TupleBytes();
  MSCM_CHECK(tuple_bytes > 0);
  const size_t per_page = static_cast<size_t>(kPageBytes / tuple_bytes);
  return per_page == 0 ? 1 : per_page;
}

size_t Table::NumPages() const {
  if (rows_.empty()) return 0;
  const size_t per_page = RowsPerPage();
  return (rows_.size() + per_page - 1) / per_page;
}

void Table::RecomputeStats() {
  stats_.assign(schema_.num_columns(), ColumnStats{});
  if (rows_.empty()) return;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    ColumnStats& s = stats_[c];
    s.min = rows_[0][c];
    s.max = rows_[0][c];
    std::unordered_set<int64_t> distinct;
    for (const Row& r : rows_) {
      s.min = std::min(s.min, r[c]);
      s.max = std::max(s.max, r[c]);
      distinct.insert(r[c]);
    }
    s.distinct = static_cast<int64_t>(distinct.size());
  }
}

void Table::SortByColumn(size_t col) {
  MSCM_CHECK(col < schema_.num_columns());
  std::stable_sort(rows_.begin(), rows_.end(),
                   [col](const Row& a, const Row& b) { return a[col] < b[col]; });
  sorted_by_ = static_cast<int>(col);
}

}  // namespace mscm::engine
