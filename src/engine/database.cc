#include "engine/database.h"

namespace mscm::engine {

const std::vector<std::unique_ptr<Index>> Database::kNoIndexes;

Table* Database::AddTable(Table table) {
  const std::string name = table.name();
  MSCM_CHECK_MSG(tables_.find(name) == tables_.end(), "duplicate table");
  auto owned = std::make_unique<Table>(std::move(table));
  owned->RecomputeStats();
  Table* ptr = owned.get();
  tables_[name] = std::move(owned);
  return ptr;
}

void Database::CreateIndex(const std::string& table_name, size_t col,
                           bool clustered) {
  Table* table = FindTableMutable(table_name);
  MSCM_CHECK_MSG(table != nullptr, "unknown table");
  if (clustered) {
    MSCM_CHECK_MSG(indexes_[table_name].empty(),
                   "clustered index must be created first");
    table->SortByColumn(col);
  }
  indexes_[table_name].push_back(
      std::make_unique<Index>(*table, col, clustered));
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::FindTableMutable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const std::vector<std::unique_ptr<Index>>& Database::IndexesOn(
    const std::string& table_name) const {
  auto it = indexes_.find(table_name);
  return it == indexes_.end() ? kNoIndexes : it->second;
}

const Index* Database::FindIndex(const std::string& table_name,
                                 size_t col) const {
  for (const auto& idx : IndexesOn(table_name)) {
    if (idx->column() == col) return idx.get();
  }
  return nullptr;
}

const Index* Database::ClusteredIndexOn(const std::string& table_name) const {
  for (const auto& idx : IndexesOn(table_name)) {
    if (idx->clustered()) return idx.get();
  }
  return nullptr;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace mscm::engine
