#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace mscm::engine {
namespace {

// Predicate with one condition removed (the index's driving condition, which
// the access method already enforced).
Predicate Residual(const Predicate& pred, int drop) {
  std::vector<Condition> rest;
  const auto& conds = pred.conditions();
  for (size_t i = 0; i < conds.size(); ++i) {
    if (static_cast<int>(i) == drop) continue;
    rest.push_back(conds[i]);
  }
  return Predicate(std::move(rest));
}

double Log2Safe(double x) { return x <= 2.0 ? 1.0 : std::log2(x); }

}  // namespace

int Executor::ProjectedBytes(const Table& table,
                             const std::vector<int>& projection) const {
  if (projection.empty()) return table.schema().TupleBytes();
  int bytes = 0;
  for (int c : projection) {
    bytes += table.schema().column(static_cast<size_t>(c)).byte_width;
  }
  return bytes;
}

SelectExecution Executor::ExecuteSelect(const SelectQuery& query,
                                        const SelectPlan& plan) const {
  const Table* table = db_->FindTable(query.table);
  MSCM_CHECK_MSG(table != nullptr, "unknown table in select");

  SelectExecution exec;
  exec.method = plan.method;
  exec.operand_rows = table->num_rows();
  exec.operand_tuple_bytes = table->schema().TupleBytes();
  exec.result_tuple_bytes = ProjectedBytes(*table, query.projection);

  const size_t num_conditions = query.predicate.conditions().size();

  switch (plan.method) {
    case AccessMethod::kSequentialScan: {
      exec.work.sequential_pages += static_cast<double>(table->NumPages());
      exec.work.tuples_read += static_cast<double>(table->num_rows());
      exec.work.predicate_evals +=
          static_cast<double>(table->num_rows() * std::max<size_t>(1, num_conditions));
      exec.intermediate_rows = table->num_rows();
      size_t matches = 0;
      for (const Row& row : table->rows()) {
        if (query.predicate.Matches(row)) ++matches;
      }
      exec.result_rows = matches;
      break;
    }
    case AccessMethod::kClusteredIndexScan: {
      MSCM_CHECK(plan.driving_condition >= 0);
      const Index* idx = db_->ClusteredIndexOn(query.table);
      MSCM_CHECK_MSG(idx != nullptr, "no clustered index for plan");
      const Condition& driving =
          query.predicate.conditions()[static_cast<size_t>(plan.driving_condition)];
      auto [lo, hi] = driving.KeyRange();
      const std::vector<size_t> row_ids = idx->Lookup(lo, hi);
      exec.intermediate_rows = row_ids.size();
      exec.work.init_ops += idx->TreeHeight();
      // Qualified rows are physically contiguous: sequential page reads.
      const double pages =
          std::ceil(static_cast<double>(row_ids.size()) /
                    static_cast<double>(table->RowsPerPage()));
      exec.work.sequential_pages += std::max(1.0, pages);
      exec.work.tuples_read += static_cast<double>(row_ids.size());
      const Predicate residual = Residual(query.predicate, plan.driving_condition);
      exec.work.predicate_evals += static_cast<double>(
          row_ids.size() * std::max<size_t>(1, residual.conditions().size()));
      size_t matches = 0;
      for (size_t id : row_ids) {
        if (residual.Matches(table->row(id))) ++matches;
      }
      exec.result_rows = matches;
      break;
    }
    case AccessMethod::kNonClusteredIndexScan: {
      MSCM_CHECK(plan.driving_condition >= 0);
      const Condition& driving =
          query.predicate.conditions()[static_cast<size_t>(plan.driving_condition)];
      const Index* idx = db_->FindIndex(
          query.table, static_cast<size_t>(driving.column));
      MSCM_CHECK_MSG(idx != nullptr, "no index for plan");
      auto [lo, hi] = driving.KeyRange();
      const std::vector<size_t> row_ids = idx->Lookup(lo, hi);
      exec.intermediate_rows = row_ids.size();
      exec.work.init_ops += idx->TreeHeight();
      // Leaf directory pages scanned sequentially…
      exec.work.sequential_pages +=
          std::ceil(static_cast<double>(row_ids.size()) / 256.0);
      // …then random heap-page fetches. Within one scan, rows sharing a page
      // hit the same frame, so the I/O demand is the number of *distinct*
      // pages touched (cross-query reuse is the buffer pool's job in the
      // cost simulator).
      std::unordered_set<size_t> touched_pages;
      for (size_t id : row_ids) touched_pages.insert(table->PageOfRow(id));
      exec.work.random_pages += static_cast<double>(touched_pages.size());
      exec.work.tuples_read += static_cast<double>(row_ids.size());
      const Predicate residual = Residual(query.predicate, plan.driving_condition);
      exec.work.predicate_evals += static_cast<double>(
          row_ids.size() * std::max<size_t>(1, residual.conditions().size()));
      size_t matches = 0;
      for (size_t id : row_ids) {
        if (residual.Matches(table->row(id))) ++matches;
      }
      exec.result_rows = matches;
      break;
    }
  }

  exec.work.result_tuples += static_cast<double>(exec.result_rows);
  exec.work.result_bytes += static_cast<double>(exec.result_rows) *
                            static_cast<double>(exec.result_tuple_bytes);
  return exec;
}

JoinExecution Executor::ExecuteJoin(const JoinQuery& query,
                                    const JoinPlan& plan) const {
  const Table* left = db_->FindTable(query.left_table);
  const Table* right = db_->FindTable(query.right_table);
  MSCM_CHECK_MSG(left != nullptr && right != nullptr, "unknown join table");

  JoinExecution exec;
  exec.method = plan.method;
  exec.left_rows = left->num_rows();
  exec.right_rows = right->num_rows();
  exec.left_tuple_bytes = left->schema().TupleBytes();
  exec.right_tuple_bytes = right->schema().TupleBytes();

  // Result tuple width from the projection (both sides when empty).
  if (query.projection.empty()) {
    exec.result_tuple_bytes = exec.left_tuple_bytes + exec.right_tuple_bytes;
  } else {
    int bytes = 0;
    for (auto [side, col] : query.projection) {
      const Table* t = side == 0 ? left : right;
      bytes += t->schema().column(static_cast<size_t>(col)).byte_width;
    }
    exec.result_tuple_bytes = bytes;
  }

  // Qualify both sides (every method scans / filters its inputs; the filter
  // work is charged below per method).
  std::vector<size_t> left_ids;
  for (size_t i = 0; i < left->num_rows(); ++i) {
    if (query.left_predicate.Matches(left->row(i))) left_ids.push_back(i);
  }
  std::vector<size_t> right_ids;
  for (size_t i = 0; i < right->num_rows(); ++i) {
    if (query.right_predicate.Matches(right->row(i))) right_ids.push_back(i);
  }
  exec.left_qualified = left_ids.size();
  exec.right_qualified = right_ids.size();

  // Real result cardinality via a hash map on the smaller qualified side
  // (independent of the costed join method — the answer is the same).
  {
    const bool build_left = left_ids.size() <= right_ids.size();
    const Table* build_t = build_left ? left : right;
    const Table* probe_t = build_left ? right : left;
    const int build_col = build_left ? query.left_column : query.right_column;
    const int probe_col = build_left ? query.right_column : query.left_column;
    const std::vector<size_t>& build_ids = build_left ? left_ids : right_ids;
    const std::vector<size_t>& probe_ids = build_left ? right_ids : left_ids;
    std::unordered_map<int64_t, size_t> counts;
    counts.reserve(build_ids.size());
    for (size_t id : build_ids) {
      ++counts[build_t->row(id)[static_cast<size_t>(build_col)]];
    }
    size_t result = 0;
    for (size_t id : probe_ids) {
      auto it = counts.find(probe_t->row(id)[static_cast<size_t>(probe_col)]);
      if (it != counts.end()) result += it->second;
    }
    exec.result_rows = result;
  }

  const double nl = static_cast<double>(left_ids.size());
  const double nr = static_cast<double>(right_ids.size());
  const double left_pages = static_cast<double>(left->NumPages());
  const double right_pages = static_cast<double>(right->NumPages());
  const double lconds = static_cast<double>(
      std::max<size_t>(1, query.left_predicate.conditions().size()));
  const double rconds = static_cast<double>(
      std::max<size_t>(1, query.right_predicate.conditions().size()));

  switch (plan.method) {
    case JoinMethod::kBlockNestedLoop: {
      const bool left_outer = plan.outer_side == 0;
      const double outer_pages = left_outer ? left_pages : right_pages;
      const double inner_pages = left_outer ? right_pages : left_pages;
      const double blocks = std::max(
          1.0, std::ceil(outer_pages / 63.0));  // one page reserved for inner
      exec.work.sequential_pages += outer_pages + blocks * inner_pages;
      exec.work.tuples_read +=
          static_cast<double>(left->num_rows() + right->num_rows());
      exec.work.predicate_evals +=
          static_cast<double>(left->num_rows()) * lconds +
          static_cast<double>(right->num_rows()) * rconds;
      exec.work.compare_ops += nl * nr;  // join-condition evaluations
      break;
    }
    case JoinMethod::kIndexNestedLoop: {
      const bool left_outer = plan.outer_side == 0;
      const Table* outer_t = left_outer ? left : right;
      const Table* inner_t = left_outer ? right : left;
      const std::vector<size_t>& outer_ids = left_outer ? left_ids : right_ids;
      const Index* inner_idx = db_->FindIndex(
          inner_t->name(),
          static_cast<size_t>(left_outer ? query.right_column
                                         : query.left_column));
      MSCM_CHECK_MSG(inner_idx != nullptr, "index NL join without inner index");
      const double outer_pages =
          static_cast<double>(outer_t->NumPages());
      exec.work.sequential_pages += outer_pages;
      exec.work.tuples_read += static_cast<double>(outer_t->num_rows());
      exec.work.predicate_evals +=
          static_cast<double>(outer_t->num_rows()) *
          (left_outer ? lconds : rconds);
      // One index descent + matching-row fetches per outer tuple.
      exec.work.init_ops += 0.0;  // descents counted as random I/O below
      const double height = inner_idx->TreeHeight();
      double inner_fetches = 0.0;
      const int outer_col = left_outer ? query.left_column : query.right_column;
      for (size_t id : outer_ids) {
        const int64_t key = outer_t->row(id)[static_cast<size_t>(outer_col)];
        inner_fetches += static_cast<double>(inner_idx->CountRange(key, key));
      }
      exec.work.random_pages +=
          static_cast<double>(outer_ids.size()) * height + inner_fetches;
      exec.work.tuples_read += inner_fetches;
      exec.work.predicate_evals +=
          inner_fetches * (left_outer ? rconds : lconds);
      break;
    }
    case JoinMethod::kSortMerge: {
      exec.work.sequential_pages += left_pages + right_pages;
      // External-sort runs: write + re-read both qualified inputs.
      const double lq_pages = std::ceil(
          nl / static_cast<double>(left->RowsPerPage()));
      const double rq_pages = std::ceil(
          nr / static_cast<double>(right->RowsPerPage()));
      exec.work.sequential_pages += 2.0 * (lq_pages + rq_pages);
      exec.work.tuples_read +=
          static_cast<double>(left->num_rows() + right->num_rows());
      exec.work.predicate_evals +=
          static_cast<double>(left->num_rows()) * lconds +
          static_cast<double>(right->num_rows()) * rconds;
      exec.work.compare_ops +=
          nl * Log2Safe(nl) + nr * Log2Safe(nr) + nl + nr;
      break;
    }
    case JoinMethod::kHashJoin: {
      exec.work.sequential_pages += left_pages + right_pages;
      exec.work.tuples_read +=
          static_cast<double>(left->num_rows() + right->num_rows());
      exec.work.predicate_evals +=
          static_cast<double>(left->num_rows()) * lconds +
          static_cast<double>(right->num_rows()) * rconds;
      exec.work.hash_ops += nl + nr;
      // Grace partitioning spill when the build side exceeds memory budget
      // (charged as re-write + re-read of both qualified inputs).
      const double build = std::min(nl, nr);
      constexpr double kInMemoryBuildRows = 200'000.0;
      if (build > kInMemoryBuildRows) {
        const double lq_pages = std::ceil(
            nl / static_cast<double>(left->RowsPerPage()));
        const double rq_pages = std::ceil(
            nr / static_cast<double>(right->RowsPerPage()));
        exec.work.sequential_pages += 2.0 * (lq_pages + rq_pages);
      }
      break;
    }
  }

  exec.work.result_tuples += static_cast<double>(exec.result_rows);
  exec.work.result_bytes += static_cast<double>(exec.result_rows) *
                            static_cast<double>(exec.result_tuple_bytes);
  return exec;
}

size_t Executor::NaiveSelectCount(const SelectQuery& query) const {
  const Table* table = db_->FindTable(query.table);
  MSCM_CHECK(table != nullptr);
  size_t matches = 0;
  for (const Row& row : table->rows()) {
    if (query.predicate.Matches(row)) ++matches;
  }
  return matches;
}

size_t Executor::NaiveJoinCount(const JoinQuery& query) const {
  const Table* left = db_->FindTable(query.left_table);
  const Table* right = db_->FindTable(query.right_table);
  MSCM_CHECK(left != nullptr && right != nullptr);
  size_t matches = 0;
  for (const Row& lr : left->rows()) {
    if (!query.left_predicate.Matches(lr)) continue;
    for (const Row& rr : right->rows()) {
      if (!query.right_predicate.Matches(rr)) continue;
      if (lr[static_cast<size_t>(query.left_column)] ==
          rr[static_cast<size_t>(query.right_column)]) {
        ++matches;
      }
    }
  }
  return matches;
}

}  // namespace mscm::engine
