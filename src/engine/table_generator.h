// Synthetic database generation matching the paper's experimental setup
// (§5): each local database has 12 randomly-generated tables R1…R12 with
// cardinalities from 3,000 to 250,000 tuples, a number of indexed columns,
// and various selectivities for different columns.
//
// A `scale` factor shrinks cardinalities proportionally so tests can run the
// full pipeline in milliseconds while benches use paper-scale data.

#ifndef MSCM_ENGINE_TABLE_GENERATOR_H_
#define MSCM_ENGINE_TABLE_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "engine/database.h"

namespace mscm::engine {

struct TableGeneratorConfig {
  int num_tables = 12;
  // Multiplies the paper cardinalities (1.0 = 3,000 … 250,000 tuples).
  double scale = 1.0;
  // Create a clustered index on column a1 of every table.
  bool clustered_indexes = true;
  // Create non-clustered indexes on columns a2 and a3 of every table.
  bool nonclustered_indexes = true;
};

// Paper-style cardinality for table number `i` (1-based) at scale 1.0.
size_t PaperCardinality(int i);

// Generates the database. Deterministic given the rng state.
Database GenerateDatabase(const TableGeneratorConfig& config, Rng& rng);

// Generates a dedicated tiny probing table `P0` (used by the probing query;
// kept small so probing is cheap, per §3.3).
void AddProbingTable(Database& db, Rng& rng);

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_TABLE_GENERATOR_H_
