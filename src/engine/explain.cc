#include "engine/explain.h"

#include <cmath>

#include "common/str_util.h"

namespace mscm::engine {

std::string ExplainSelect(const Database& db, const SelectQuery& query,
                          const PlannerRules& rules) {
  const Table* table = db.FindTable(query.table);
  MSCM_CHECK_MSG(table != nullptr, "unknown table in explain");
  const SelectPlan plan = ChooseSelectPlan(db, query, rules);

  std::string out = query.ToString(table->schema()) + "\n";
  if (plan.driving_condition >= 0) {
    const Condition& driving =
        query.predicate.conditions()[static_cast<size_t>(
            plan.driving_condition)];
    const double sel = EstimateConditionSelectivity(*table, driving);
    out += Format("  -> %s on %s (driving selectivity %.4f)\n",
                  ToString(plan.method),
                  table->schema()
                      .column(static_cast<size_t>(driving.column))
                      .name.c_str(),
                  sel);
  } else {
    out += Format("  -> %s\n", ToString(plan.method));
  }

  const double rows = static_cast<double>(table->num_rows());
  double intermediate = rows;
  if (plan.driving_condition >= 0) {
    intermediate =
        rows * EstimateConditionSelectivity(
                   *table, query.predicate.conditions()[static_cast<size_t>(
                               plan.driving_condition)]);
  }
  const double result =
      rows * EstimatePredicateSelectivity(*table, query.predicate);
  out += Format("     estimated: operand %.0f, intermediate %.0f, result %.0f"
                " tuples\n",
                rows, intermediate, result);
  return out;
}

std::string ExplainJoin(const Database& db, const JoinQuery& query,
                        const PlannerRules& rules) {
  const Table* left = db.FindTable(query.left_table);
  const Table* right = db.FindTable(query.right_table);
  MSCM_CHECK_MSG(left != nullptr && right != nullptr,
                 "unknown table in explain");
  const JoinPlan plan = ChooseJoinPlan(db, query, rules);

  const double lqual =
      static_cast<double>(left->num_rows()) *
      EstimatePredicateSelectivity(*left, query.left_predicate);
  const double rqual =
      static_cast<double>(right->num_rows()) *
      EstimatePredicateSelectivity(*right, query.right_predicate);

  std::string out = Format(
      "%s join %s on %s = %s\n", query.left_table.c_str(),
      query.right_table.c_str(),
      left->schema().column(static_cast<size_t>(query.left_column))
          .name.c_str(),
      right->schema().column(static_cast<size_t>(query.right_column))
          .name.c_str());
  out += Format("  -> %s (outer = %s)\n", ToString(plan.method),
                plan.outer_side == 0 ? query.left_table.c_str()
                                     : query.right_table.c_str());
  out += Format("     filter %s: %s (est. %.0f qualify of %zu)\n",
                query.left_table.c_str(),
                query.left_predicate.ToString(left->schema()).c_str(), lqual,
                left->num_rows());
  out += Format("     filter %s: %s (est. %.0f qualify of %zu)\n",
                query.right_table.c_str(),
                query.right_predicate.ToString(right->schema()).c_str(),
                rqual, right->num_rows());
  return out;
}

}  // namespace mscm::engine
