// Query executor with physical-work accounting.
//
// Executions are *real*: the result cardinality comes from actually
// evaluating predicates and join matches against table data, so the
// explanatory variables fed into the regression (operand sizes, intermediate
// sizes, result sizes) are ground truth, not estimates. Work counters are
// analytic where a faithful loop would be pointlessly quadratic (e.g. block
// nested loop compare counts).

#ifndef MSCM_ENGINE_EXECUTOR_H_
#define MSCM_ENGINE_EXECUTOR_H_

#include <cstddef>

#include "engine/access_path.h"
#include "engine/database.h"
#include "engine/query.h"
#include "engine/work_counters.h"

namespace mscm::engine {

struct SelectExecution {
  AccessMethod method = AccessMethod::kSequentialScan;
  size_t operand_rows = 0;       // cardinality of the operand table
  size_t intermediate_rows = 0;  // tuples fetched by the access method
  size_t result_rows = 0;        // tuples satisfying the whole predicate
  int operand_tuple_bytes = 0;
  int result_tuple_bytes = 0;
  WorkCounters work;
};

struct JoinExecution {
  JoinMethod method = JoinMethod::kHashJoin;
  size_t left_rows = 0;
  size_t right_rows = 0;
  size_t left_qualified = 0;   // left tuples passing the left predicate
  size_t right_qualified = 0;  // right tuples passing the right predicate
  size_t result_rows = 0;
  int left_tuple_bytes = 0;
  int right_tuple_bytes = 0;
  int result_tuple_bytes = 0;
  WorkCounters work;
};

class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) { MSCM_CHECK(db != nullptr); }

  SelectExecution ExecuteSelect(const SelectQuery& query,
                                const SelectPlan& plan) const;

  JoinExecution ExecuteJoin(const JoinQuery& query, const JoinPlan& plan) const;

  // Reference implementations (pure semantics, no work accounting) used by
  // the test suite to validate executor results.
  size_t NaiveSelectCount(const SelectQuery& query) const;
  size_t NaiveJoinCount(const JoinQuery& query) const;

 private:
  int ProjectedBytes(const Table& table,
                     const std::vector<int>& projection) const;

  const Database* db_;
};

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_EXECUTOR_H_
