// Conjunctive range/equality predicates and uniform-assumption selectivity
// estimation. The query sampler varies predicate selectivities to spread
// sample queries across operand/result sizes (the paper's explanatory
// variables), and the access-path chooser uses estimated selectivity to pick
// between index and sequential scans.

#ifndef MSCM_ENGINE_PREDICATE_H_
#define MSCM_ENGINE_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/table.h"

namespace mscm::engine {

enum class CompareOp {
  kEq,       // column == lo
  kLt,       // column <  lo
  kLe,       // column <= lo
  kGt,       // column >  lo
  kGe,       // column >= lo
  kBetween,  // lo <= column <= hi
};

struct Condition {
  int column = 0;
  CompareOp op = CompareOp::kEq;
  int64_t lo = 0;
  int64_t hi = 0;  // only used by kBetween

  bool Matches(const Row& row) const;

  // Closed key range [lo, hi] of values satisfying the condition, for index
  // range scans. Uses int64 min/max for open sides.
  std::pair<int64_t, int64_t> KeyRange() const;

  std::string ToString(const Schema& schema) const;
};

// A conjunction of conditions; empty means "true".
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Condition> conditions)
      : conditions_(std::move(conditions)) {}

  bool Matches(const Row& row) const {
    for (const Condition& c : conditions_) {
      if (!c.Matches(row)) return false;
    }
    return true;
  }

  bool empty() const { return conditions_.empty(); }
  const std::vector<Condition>& conditions() const { return conditions_; }
  void Add(Condition c) { conditions_.push_back(c); }

  // Index of the first condition on `column`, or -1.
  int FindCondition(int column) const;

  std::string ToString(const Schema& schema) const;

 private:
  std::vector<Condition> conditions_;
};

// Estimated fraction of rows of `table` satisfying `cond`, assuming values
// uniform between the column's min and max statistics.
double EstimateConditionSelectivity(const Table& table, const Condition& cond);

// Product of per-condition selectivities (independence assumption).
double EstimatePredicateSelectivity(const Table& table, const Predicate& pred);

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_PREDICATE_H_
