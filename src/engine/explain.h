// Human-readable plan explanations: which access/join method the planner
// chose and why, with the estimated cardinalities that drove the choice.
// The MDBS operator-facing equivalent of EXPLAIN.

#ifndef MSCM_ENGINE_EXPLAIN_H_
#define MSCM_ENGINE_EXPLAIN_H_

#include <string>

#include "engine/access_path.h"

namespace mscm::engine {

// Renders the chosen plan for a unary query, e.g.
//   select a1 from R3 where a2 between 10 and 90
//     -> nonclustered-index-scan on a2 (driving selectivity 0.012)
//        estimated: operand 10000, intermediate 120, result 84
std::string ExplainSelect(const Database& db, const SelectQuery& query,
                          const PlannerRules& rules);

// Renders the chosen plan for a join query with per-side filters and the
// estimated qualified/result cardinalities.
std::string ExplainJoin(const Database& db, const JoinQuery& query,
                        const PlannerRules& rules);

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_EXPLAIN_H_
