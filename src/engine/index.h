// Secondary index structures.
//
// An index is a sorted (key, row-id) directory over one column. A *clustered*
// index additionally promises the table's rows are physically sorted by the
// key, so a range scan touches contiguous pages; a *non-clustered* index
// yields one random page access per matching row (modulo buffering, which the
// cost simulator models). Index height accounting feeds the initialization
// cost term of the simulated DBMS.

#ifndef MSCM_ENGINE_INDEX_H_
#define MSCM_ENGINE_INDEX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/table.h"

namespace mscm::engine {

class Index {
 public:
  // Builds an index over `table.column(col)`. If `clustered`, the caller must
  // have physically sorted the table by `col` beforehand (Database enforces
  // this).
  Index(const Table& table, size_t col, bool clustered);

  size_t column() const { return column_; }
  bool clustered() const { return clustered_; }

  // Row ids whose key falls in [lo, hi], in key order.
  std::vector<size_t> Lookup(int64_t lo, int64_t hi) const;

  // Number of entries with key in [lo, hi] without materializing them.
  size_t CountRange(int64_t lo, int64_t hi) const;

  // Approximate B+-tree height for the directory (fan-out 256); contributes
  // to per-query initialization work.
  int TreeHeight() const;

  size_t num_entries() const { return entries_.size(); }

 private:
  size_t column_;
  bool clustered_;
  // Sorted by key, then row id.
  std::vector<std::pair<int64_t, size_t>> entries_;
};

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_INDEX_H_
