#include "engine/table_generator.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace mscm::engine {
namespace {

// Declared byte widths cycled across tables so tuple lengths differ (tuple
// length is a secondary explanatory variable in the paper's Table 3).
constexpr int kWidthChoices[] = {8, 12, 16, 20, 24, 32};

}  // namespace

size_t PaperCardinality(int i) {
  // 12 cardinalities spanning 3,000 … 250,000 as in the paper.
  static const size_t kCards[12] = {3000,  6000,   10000,  15000,
                                    25000, 40000,  50000,  75000,
                                    100000, 150000, 200000, 250000};
  MSCM_CHECK(i >= 1);
  return kCards[(i - 1) % 12];
}

Database GenerateDatabase(const TableGeneratorConfig& config, Rng& rng) {
  Database db;
  for (int t = 1; t <= config.num_tables; ++t) {
    const size_t rows = std::max<size_t>(
        64, static_cast<size_t>(
                std::llround(static_cast<double>(PaperCardinality(t)) *
                             config.scale)));

    // 5–9 columns, widths varying by table and column.
    const int num_cols = 5 + (t % 5);
    std::vector<Column> columns;
    columns.reserve(static_cast<size_t>(num_cols));
    for (int c = 0; c < num_cols; ++c) {
      columns.push_back(Column{
          Format("a%d", c + 1),
          kWidthChoices[static_cast<size_t>((t + c) % 6)]});
    }

    Table table(Format("R%d", t), Schema(std::move(columns)));
    table.Reserve(rows);

    // Column value ranges chosen so different columns give different
    // selectivities: a1 spans ~2x cardinality (nearly unique), a2 spans the
    // cardinality, a3 a fixed 10k domain, a4 a small 100-value domain, the
    // rest mid-size domains. Join columns (a2) share the same domain shape
    // across tables so equijoins produce non-trivial results.
    std::vector<int64_t> ranges(static_cast<size_t>(num_cols));
    for (int c = 0; c < num_cols; ++c) {
      switch (c) {
        case 0:
          ranges[0] = static_cast<int64_t>(rows) * 2;
          break;
        case 1:
          ranges[1] = static_cast<int64_t>(rows);
          break;
        case 2:
          ranges[2] = 10'000;
          break;
        case 3:
          ranges[3] = 100;
          break;
        default:
          ranges[static_cast<size_t>(c)] = 1'000 * (c + 1);
          break;
      }
    }

    for (size_t r = 0; r < rows; ++r) {
      Row row(static_cast<size_t>(num_cols));
      for (int c = 0; c < num_cols; ++c) {
        row[static_cast<size_t>(c)] =
            rng.UniformInt(0, ranges[static_cast<size_t>(c)] - 1);
      }
      table.AddRow(std::move(row));
    }
    db.AddTable(std::move(table));

    const std::string name = Format("R%d", t);
    if (config.clustered_indexes) {
      db.CreateIndex(name, 0, /*clustered=*/true);
    }
    if (config.nonclustered_indexes) {
      db.CreateIndex(name, 1, /*clustered=*/false);
      db.CreateIndex(name, 2, /*clustered=*/false);
    }
  }
  return db;
}

void AddProbingTable(Database& db, Rng& rng) {
  // A small fixed-shape table: the probing workload runs one moderately
  // selective sequential scan plus one selective non-clustered index range
  // over it, so the observed probing cost registers contention on *all*
  // resources a real query touches — CPU, sequential I/O, and random I/O
  // through the buffer pool. Small cost, but large enough to register the
  // contention level (the paper notes queries with extremely small cost
  // make poor probes).
  constexpr size_t kRows = 2000;
  Table table("P0", Schema({{"p1", 8}, {"p2", 8}, {"p3", 16}}));
  table.Reserve(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    table.AddRow(Row{rng.UniformInt(0, 9999), rng.UniformInt(0, 999),
                     rng.UniformInt(0, 99)});
  }
  db.AddTable(std::move(table));
  db.CreateIndex("P0", /*col=*/1, /*clustered=*/false);
}

}  // namespace mscm::engine
