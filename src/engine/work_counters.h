// Physical work performed by a query execution. The executor fills these in;
// the cost simulator (src/sim) converts them into elapsed seconds under the
// current contention level. Keeping the two stages separate is what lets the
// same execution produce different observed costs in different contention
// states — the phenomenon the paper's qualitative cost models capture.

#ifndef MSCM_ENGINE_WORK_COUNTERS_H_
#define MSCM_ENGINE_WORK_COUNTERS_H_

namespace mscm::engine {

struct WorkCounters {
  // I/O work.
  double sequential_pages = 0.0;  // pages read in sequential order
  double random_pages = 0.0;      // pages read with random placement

  // CPU work.
  double tuples_read = 0.0;       // tuples fetched from storage
  double predicate_evals = 0.0;   // qualification-condition evaluations
  double compare_ops = 0.0;       // sort/merge comparisons
  double hash_ops = 0.0;          // hash-table build/probe operations

  // Result handling.
  double result_tuples = 0.0;     // tuples placed in the result
  double result_bytes = 0.0;      // bytes of result materialized

  // Per-query startup work (index descents, plan setup, cursor opening).
  double init_ops = 1.0;

  WorkCounters& operator+=(const WorkCounters& o) {
    sequential_pages += o.sequential_pages;
    random_pages += o.random_pages;
    tuples_read += o.tuples_read;
    predicate_evals += o.predicate_evals;
    compare_ops += o.compare_ops;
    hash_ops += o.hash_ops;
    result_tuples += o.result_tuples;
    result_bytes += o.result_bytes;
    init_ops += o.init_ops;
    return *this;
  }
};

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_WORK_COUNTERS_H_
