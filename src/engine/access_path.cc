#include "engine/access_path.h"

namespace mscm::engine {

const char* ToString(AccessMethod m) {
  switch (m) {
    case AccessMethod::kSequentialScan:
      return "seq-scan";
    case AccessMethod::kClusteredIndexScan:
      return "clustered-index-scan";
    case AccessMethod::kNonClusteredIndexScan:
      return "nonclustered-index-scan";
  }
  return "?";
}

const char* ToString(JoinMethod m) {
  switch (m) {
    case JoinMethod::kBlockNestedLoop:
      return "block-nested-loop";
    case JoinMethod::kIndexNestedLoop:
      return "index-nested-loop";
    case JoinMethod::kSortMerge:
      return "sort-merge";
    case JoinMethod::kHashJoin:
      return "hash-join";
  }
  return "?";
}

SelectPlan ChooseSelectPlan(const Database& db, const SelectQuery& query,
                            const PlannerRules& rules) {
  const Table* table = db.FindTable(query.table);
  MSCM_CHECK_MSG(table != nullptr, "unknown table in select");

  SelectPlan plan;

  // Prefer a clustered index whose column has a condition.
  const Index* clustered = db.ClusteredIndexOn(query.table);
  if (clustered != nullptr) {
    const int cond = query.predicate.FindCondition(
        static_cast<int>(clustered->column()));
    if (cond >= 0) {
      plan.method = AccessMethod::kClusteredIndexScan;
      plan.driving_condition = cond;
      return plan;
    }
  }

  // Otherwise the most selective usable non-clustered index below the limit.
  double best_sel = rules.nonclustered_selectivity_limit;
  for (const auto& idx : db.IndexesOn(query.table)) {
    if (idx->clustered()) continue;
    const int cond =
        query.predicate.FindCondition(static_cast<int>(idx->column()));
    if (cond < 0) continue;
    const double sel = EstimateConditionSelectivity(
        *table, query.predicate.conditions()[static_cast<size_t>(cond)]);
    if (sel < best_sel) {
      best_sel = sel;
      plan.method = AccessMethod::kNonClusteredIndexScan;
      plan.driving_condition = cond;
    }
  }
  return plan;
}

JoinPlan ChooseJoinPlan(const Database& db, const JoinQuery& query,
                        const PlannerRules& rules) {
  const Table* left = db.FindTable(query.left_table);
  const Table* right = db.FindTable(query.right_table);
  MSCM_CHECK_MSG(left != nullptr && right != nullptr, "unknown join table");

  JoinPlan plan;

  const Index* right_idx =
      db.FindIndex(query.right_table, static_cast<size_t>(query.right_column));
  const Index* left_idx =
      db.FindIndex(query.left_table, static_cast<size_t>(query.left_column));

  const double left_qualified =
      static_cast<double>(left->num_rows()) *
      EstimatePredicateSelectivity(*left, query.left_predicate);
  const double right_qualified =
      static_cast<double>(right->num_rows()) *
      EstimatePredicateSelectivity(*right, query.right_predicate);

  // Index nested loop when one side has a join-column index and the other
  // (outer) side is small relative to it.
  if (right_idx != nullptr &&
      left_qualified <
          rules.index_join_outer_limit * static_cast<double>(right->num_rows())) {
    plan.method = JoinMethod::kIndexNestedLoop;
    plan.outer_side = 0;
    return plan;
  }
  if (left_idx != nullptr &&
      right_qualified <
          rules.index_join_outer_limit * static_cast<double>(left->num_rows())) {
    plan.method = JoinMethod::kIndexNestedLoop;
    plan.outer_side = 1;
    return plan;
  }

  // Tiny inputs: block nested loop is fine and avoids hash/sort setup.
  if (left_qualified * right_qualified < 250'000.0) {
    plan.method = JoinMethod::kBlockNestedLoop;
    plan.outer_side = left_qualified <= right_qualified ? 0 : 1;
    return plan;
  }

  plan.method =
      rules.prefer_hash_join ? JoinMethod::kHashJoin : JoinMethod::kSortMerge;
  plan.outer_side = left_qualified <= right_qualified ? 0 : 1;
  return plan;
}

}  // namespace mscm::engine
