#include "engine/index.h"

#include <algorithm>
#include <cmath>

namespace mscm::engine {

Index::Index(const Table& table, size_t col, bool clustered)
    : column_(col), clustered_(clustered) {
  MSCM_CHECK(col < table.schema().num_columns());
  if (clustered) {
    MSCM_CHECK_MSG(table.sorted_by() == static_cast<int>(col),
                   "clustered index requires physically sorted table");
  }
  entries_.reserve(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    entries_.emplace_back(table.row(i)[col], i);
  }
  std::sort(entries_.begin(), entries_.end());
}

std::vector<size_t> Index::Lookup(int64_t lo, int64_t hi) const {
  std::vector<size_t> out;
  auto first = std::lower_bound(
      entries_.begin(), entries_.end(), std::make_pair(lo, size_t{0}));
  for (auto it = first; it != entries_.end() && it->first <= hi; ++it) {
    out.push_back(it->second);
  }
  return out;
}

size_t Index::CountRange(int64_t lo, int64_t hi) const {
  auto first = std::lower_bound(
      entries_.begin(), entries_.end(), std::make_pair(lo, size_t{0}));
  auto last = std::upper_bound(
      entries_.begin(), entries_.end(),
      std::make_pair(hi, std::numeric_limits<size_t>::max()));
  return static_cast<size_t>(last - first);
}

int Index::TreeHeight() const {
  if (entries_.empty()) return 1;
  constexpr double kFanout = 256.0;
  const double h =
      std::ceil(std::log(static_cast<double>(entries_.size())) /
                std::log(kFanout));
  return std::max(1, static_cast<int>(h));
}

}  // namespace mscm::engine
