#include "engine/schema.h"

namespace mscm::engine {

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::TupleBytes() const {
  int total = 0;
  for (const Column& c : columns_) total += c.byte_width;
  return total;
}

}  // namespace mscm::engine
