// In-memory heap table with page-layout accounting.
//
// The engine never touches a real disk; instead every table knows how many
// fixed-size pages its rows occupy, and the executor counts sequential and
// random page accesses. The cost simulator (src/sim) later converts those
// counts into elapsed time under the current contention level.

#ifndef MSCM_ENGINE_TABLE_H_
#define MSCM_ENGINE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/schema.h"

namespace mscm::engine {

// Disk page size assumed by the layout accounting.
inline constexpr int kPageBytes = 8192;

struct ColumnStats {
  int64_t min = 0;
  int64_t max = 0;
  // Estimated number of distinct values (exact for generated tables).
  int64_t distinct = 0;
};

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  void AddRow(Row row) {
    MSCM_DCHECK(row.size() == schema_.num_columns());
    rows_.push_back(std::move(row));
  }
  void Reserve(size_t n) { rows_.reserve(n); }

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const {
    MSCM_DCHECK(i < rows_.size());
    return rows_[i];
  }
  const std::vector<Row>& rows() const { return rows_; }

  // Rows that fit one page given the declared tuple width (at least 1).
  size_t RowsPerPage() const;

  // Pages occupied by the table (at least 1 for a non-empty table).
  size_t NumPages() const;

  // Page number holding row `i` under the sequential heap layout.
  size_t PageOfRow(size_t i) const { return i / RowsPerPage(); }

  // Recomputes per-column min/max/distinct statistics from the data.
  void RecomputeStats();

  const ColumnStats& column_stats(size_t col) const {
    MSCM_DCHECK(col < stats_.size());
    return stats_[col];
  }
  bool has_stats() const { return !stats_.empty(); }

  // Physically sorts the rows by `col` (used to build a clustered index).
  void SortByColumn(size_t col);

  // Column the rows are physically sorted by, or -1.
  int sorted_by() const { return sorted_by_; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<ColumnStats> stats_;
  int sorted_by_ = -1;
};

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_TABLE_H_
