// Rule-based access-path selection.
//
// The paper groups local queries into classes "based on their potential
// access methods to be employed" (§4.1) — so the engine must expose exactly
// which method a query would run with. The rules mirror a classical
// System-R-style chooser: clustered index if a usable condition exists, a
// non-clustered index only when estimated selectivity is small enough,
// otherwise a sequential scan. Thresholds are profile-dependent so the two
// simulated DBMSs ("alpha"/"beta") make slightly different choices, the way
// Oracle and DB2 did in the paper's testbed.

#ifndef MSCM_ENGINE_ACCESS_PATH_H_
#define MSCM_ENGINE_ACCESS_PATH_H_

#include <string>

#include "engine/database.h"
#include "engine/query.h"

namespace mscm::engine {

enum class AccessMethod {
  kSequentialScan,
  kClusteredIndexScan,
  kNonClusteredIndexScan,
};

enum class JoinMethod {
  kBlockNestedLoop,
  kIndexNestedLoop,
  kSortMerge,
  kHashJoin,
};

const char* ToString(AccessMethod m);
const char* ToString(JoinMethod m);

struct PlannerRules {
  // Use a non-clustered index only when the estimated selectivity of its
  // condition is below this fraction.
  double nonclustered_selectivity_limit = 0.08;
  // Use an index nested-loop join when an index exists on the inner join
  // column and the qualified outer side is below this fraction of the inner.
  double index_join_outer_limit = 0.15;
  // Without usable join indexes, prefer hash join (true) or sort-merge.
  bool prefer_hash_join = true;
  // Buffer pages assumed available to block nested loop.
  int buffer_pages = 64;
};

struct SelectPlan {
  AccessMethod method = AccessMethod::kSequentialScan;
  // Condition index (into query.predicate) driving the index scan; -1 for a
  // sequential scan.
  int driving_condition = -1;
};

struct JoinPlan {
  JoinMethod method = JoinMethod::kHashJoin;
  // For index nested loop: which side is outer (0 = left, 1 = right).
  int outer_side = 0;
};

SelectPlan ChooseSelectPlan(const Database& db, const SelectQuery& query,
                            const PlannerRules& rules);

JoinPlan ChooseJoinPlan(const Database& db, const JoinQuery& query,
                        const PlannerRules& rules);

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_ACCESS_PATH_H_
