// Local query representations: unary selections (select/project over one
// table) and two-way equijoins — the query shapes the paper's query classes
// G1/G2/G3 cover.

#ifndef MSCM_ENGINE_QUERY_H_
#define MSCM_ENGINE_QUERY_H_

#include <string>
#include <vector>

#include "engine/predicate.h"

namespace mscm::engine {

struct SelectQuery {
  std::string table;
  // Output columns (indices into the table schema). Empty = all columns.
  std::vector<int> projection;
  Predicate predicate;

  std::string ToString(const Schema& schema) const;
};

struct JoinQuery {
  std::string left_table;
  std::string right_table;
  // Equijoin columns.
  int left_column = 0;
  int right_column = 0;
  // Local selections applied to each side before/while joining.
  Predicate left_predicate;
  Predicate right_predicate;
  // Output columns: (side, column) pairs where side 0 = left, 1 = right.
  // Empty = all columns of both sides.
  std::vector<std::pair<int, int>> projection;
};

}  // namespace mscm::engine

#endif  // MSCM_ENGINE_QUERY_H_
