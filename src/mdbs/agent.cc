#include "mdbs/agent.h"

namespace mscm::mdbs {

LocalDbs::SelectOutcome MdbsAgent::RunSelect(const engine::SelectQuery& query) {
  std::lock_guard<std::mutex> lock(mutex_);
  return site_->RunSelect(query);
}

LocalDbs::JoinOutcome MdbsAgent::RunJoin(const engine::JoinQuery& query) {
  std::lock_guard<std::mutex> lock(mutex_);
  return site_->RunJoin(query);
}

double MdbsAgent::RunProbingQuery() {
  std::lock_guard<std::mutex> lock(mutex_);
  return site_->RunProbingQuery();
}

sim::SystemStats MdbsAgent::MonitorSnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  return site_->MonitorSnapshot();
}

void MdbsAgent::AdvanceLoad(double dt_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  site_->AdvanceLoad(dt_seconds);
}

void MdbsAgent::SetLoadProcesses(double n) {
  std::lock_guard<std::mutex> lock(mutex_);
  site_->SetLoadProcesses(n);
}

void MdbsAgent::ResampleLoad() {
  std::lock_guard<std::mutex> lock(mutex_);
  site_->ResampleLoad();
}

void MdbsAgent::SetEnvironmentShift(const sim::EnvironmentShift& shift) {
  std::lock_guard<std::mutex> lock(mutex_);
  site_->SetEnvironmentShift(shift);
}

std::function<double()> MdbsAgent::ProbeFn() {
  return [this] { return RunProbingQuery(); };
}

}  // namespace mscm::mdbs
