#include "mdbs/local_dbs.h"

#include <algorithm>

namespace mscm::mdbs {
namespace {

engine::Database MakeDatabase(const engine::TableGeneratorConfig& tables,
                              Rng& rng) {
  engine::Database db = engine::GenerateDatabase(tables, rng);
  engine::AddProbingTable(db, rng);
  return db;
}

// The standard probing workload: a fixed range scan plus a fixed selective
// non-clustered index range over the small probing table. Cheap (a fraction
// of a second idle) but large enough that its cost tracks the contention
// level (§3.3 notes extremely-small-cost queries make poor probes), and
// touching every resource class — CPU, sequential I/O, random I/O through
// the buffer pool — so all contention dimensions register in the gauge.
engine::SelectQuery MakeProbingScan() {
  engine::SelectQuery q;
  q.table = "P0";
  q.projection = {0, 2};
  q.predicate.Add(engine::Condition{/*column=*/0, engine::CompareOp::kBetween,
                                    /*lo=*/1500, /*hi=*/8499});
  return q;
}

engine::SelectQuery MakeProbingIndexRange() {
  engine::SelectQuery q;
  q.table = "P0";
  q.projection = {1};
  // ~1% of the 0..999 domain of the indexed column p2: a couple dozen
  // random-page fetches through the non-clustered index.
  q.predicate.Add(engine::Condition{/*column=*/1, engine::CompareOp::kBetween,
                                    /*lo=*/480, /*hi=*/489});
  return q;
}

}  // namespace

LocalDbs::LocalDbs(const LocalDbsConfig& config)
    : config_(config),
      rng_(config.seed),
      database_(MakeDatabase(config.tables, rng_)),
      executor_(&database_),
      load_builder_(config.load, rng_.NextUint64()),
      monitor_(config.machine, rng_.NextUint64()),
      probing_scan_(MakeProbingScan()),
      probing_index_range_(MakeProbingIndexRange()) {}

double LocalDbs::CostOf(const engine::WorkCounters& work) {
  sim::SlowdownFactors slowdown = sim::ComputeSlowdown(
      load_builder_.Current(), config_.profile, config_.machine);
  if (!shift_.IsIdentity()) slowdown = sim::ApplyShift(slowdown, shift_);
  return sim::SimulateElapsedSeconds(work, slowdown, config_.profile, rng_);
}

void LocalDbs::PassTime(double elapsed) {
  simulated_time_ += elapsed;
  // Load drifts a little while the query runs; cap the drift step so a
  // multi-minute join does not walk the level across the whole range.
  const double dt = std::min(elapsed, 20.0);
  load_builder_.Advance(dt);
  monitor_.Tick(load_builder_.Current(), elapsed);
}

LocalDbs::SelectOutcome LocalDbs::RunSelect(const engine::SelectQuery& query) {
  SelectOutcome out;
  out.execution = executor_.ExecuteSelect(query, PlanSelect(query));
  out.elapsed_seconds = CostOf(out.execution.work);
  PassTime(out.elapsed_seconds);
  return out;
}

LocalDbs::JoinOutcome LocalDbs::RunJoin(const engine::JoinQuery& query) {
  JoinOutcome out;
  out.execution = executor_.ExecuteJoin(query, PlanJoin(query));
  out.elapsed_seconds = CostOf(out.execution.work);
  PassTime(out.elapsed_seconds);
  return out;
}

double LocalDbs::RunProbingQuery() {
  const engine::SelectExecution scan =
      executor_.ExecuteSelect(probing_scan_, PlanSelect(probing_scan_));
  const engine::SelectExecution range = executor_.ExecuteSelect(
      probing_index_range_, PlanSelect(probing_index_range_));
  engine::WorkCounters work = scan.work;
  work += range.work;
  const double elapsed = CostOf(work);
  PassTime(elapsed);
  return elapsed;
}

sim::SystemStats LocalDbs::MonitorSnapshot() {
  return monitor_.Snapshot(load_builder_.Current());
}

void LocalDbs::ReconfigureMachine(const sim::MachineSpec& machine) {
  config_.machine = machine;
  // The monitor keeps its own machine description for totals/percentages;
  // rebuild it (load averages restart, as after a reboot).
  monitor_ = sim::SystemMonitor(machine, rng_.NextUint64());
}

void LocalDbs::AdvanceLoad(double dt_seconds) {
  simulated_time_ += dt_seconds;
  load_builder_.Advance(dt_seconds);
  monitor_.Tick(load_builder_.Current(), dt_seconds);
}

engine::SelectPlan LocalDbs::PlanSelect(const engine::SelectQuery& query) const {
  return engine::ChooseSelectPlan(database_, query, config_.profile.planner);
}

engine::JoinPlan LocalDbs::PlanJoin(const engine::JoinQuery& query) const {
  return engine::ChooseJoinPlan(database_, query, config_.profile.planner);
}

}  // namespace mscm::mdbs
