// MdbsAgent: the thread-safe face of a local DBS for the online runtime.
//
// LocalDbs is a single-threaded simulation object (running any query
// advances its virtual time and drifts its load), so concurrent access —
// e.g. a background prober thread measuring contention while a planner
// thread runs ground-truth queries — must serialize. The agent wraps a
// LocalDbs in one mutex and exposes exactly the operations the paper's MDBS
// agent performs on behalf of the global level (Figure 3): submit a query,
// run the probing query, read the environment monitor, and drive the
// simulated load. Immutable site facts (name, schema, profile) are lock-free.

#ifndef MSCM_MDBS_AGENT_H_
#define MSCM_MDBS_AGENT_H_

#include <functional>
#include <mutex>

#include "mdbs/local_dbs.h"

namespace mscm::mdbs {

class MdbsAgent {
 public:
  // Does not take ownership; `site` must outlive the agent.
  explicit MdbsAgent(LocalDbs* site) : site_(site) {}

  MdbsAgent(const MdbsAgent&) = delete;
  MdbsAgent& operator=(const MdbsAgent&) = delete;

  LocalDbs::SelectOutcome RunSelect(const engine::SelectQuery& query);
  LocalDbs::JoinOutcome RunJoin(const engine::JoinQuery& query);

  // The paper's contention gauge (§3.1); this is the natural ProbeFn for a
  // runtime::ContentionTracker.
  double RunProbingQuery();

  sim::SystemStats MonitorSnapshot();

  void AdvanceLoad(double dt_seconds);
  void SetLoadProcesses(double n);
  void ResampleLoad();

  // Applies an occasionally-changing environment factor (see LocalDbs).
  void SetEnvironmentShift(const sim::EnvironmentShift& shift);

  // A ProbeFn bound to this agent (see runtime::ContentionTracker).
  std::function<double()> ProbeFn();

  // Immutable after construction — safe without the lock.
  const std::string& name() const { return site_->name(); }
  const engine::Database& database() const { return site_->database(); }
  const sim::PerformanceProfile& profile() const { return site_->profile(); }

 private:
  std::mutex mutex_;
  LocalDbs* const site_;
};

}  // namespace mscm::mdbs

#endif  // MSCM_MDBS_AGENT_H_
