// A local (component) database system as seen through its MDBS agent:
// an autonomous DBMS (engine + performance profile) running on a machine
// with a dynamic background load (load builder), observable only through
// query elapsed times and OS-level statistics — exactly the black-box
// interface the paper's global level has to work with (Figure 3).

#ifndef MSCM_MDBS_LOCAL_DBS_H_
#define MSCM_MDBS_LOCAL_DBS_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/table_generator.h"
#include "sim/contention_model.h"
#include "sim/cost_simulator.h"
#include "sim/load_builder.h"
#include "sim/performance_profile.h"
#include "sim/system_monitor.h"

namespace mscm::mdbs {

struct LocalDbsConfig {
  std::string site_name = "site";
  sim::PerformanceProfile profile = sim::PerformanceProfile::Alpha();
  engine::TableGeneratorConfig tables;
  sim::LoadRegimeConfig load;
  sim::MachineSpec machine;
  uint64_t seed = 1;
};

class LocalDbs {
 public:
  explicit LocalDbs(const LocalDbsConfig& config);

  LocalDbs(const LocalDbs&) = delete;
  LocalDbs& operator=(const LocalDbs&) = delete;

  struct SelectOutcome {
    engine::SelectExecution execution;
    double elapsed_seconds = 0.0;
  };
  struct JoinOutcome {
    engine::JoinExecution execution;
    double elapsed_seconds = 0.0;
  };

  // Plans and runs a query under the current contention level. Running a
  // query advances simulated time (the load drifts and the monitor ticks).
  SelectOutcome RunSelect(const engine::SelectQuery& query);
  JoinOutcome RunJoin(const engine::JoinQuery& query);

  // Runs the standard probing query and returns its observed cost — the
  // paper's gauge of the current system contention level (§3.1).
  double RunProbingQuery();

  // Current OS statistics as the environment monitor reports them.
  sim::SystemStats MonitorSnapshot();

  // Load control (the load builder half of the MDBS agent).
  void ResampleLoad() { load_builder_.Resample(); }
  void AdvanceLoad(double dt_seconds);
  void SetLoadProcesses(double n) { load_builder_.SetProcessCount(n); }
  double current_processes() const {
    return load_builder_.Current().num_processes;
  }

  // Simulates an occasionally-changing factor (paper §2): a hardware
  // reconfiguration such as a memory upgrade/downgrade. Existing cost models
  // derived for the old machine drift until rebuilt.
  void ReconfigureMachine(const sim::MachineSpec& machine);

  // A milder occasionally-changing factor: a persistent multiplicative
  // shift of the cost surface (degraded disk, scaled CPU). Applied to every
  // subsequent query — including the probing query, so the gauge partially
  // follows, but models derived pre-shift misestimate until re-derived.
  void SetEnvironmentShift(const sim::EnvironmentShift& shift) {
    shift_ = shift;
  }
  const sim::EnvironmentShift& environment_shift() const { return shift_; }

  // Plan visibility (used for query classification at the global level; in
  // the real system this is inferred from catalog knowledge of indexes).
  engine::SelectPlan PlanSelect(const engine::SelectQuery& query) const;
  engine::JoinPlan PlanJoin(const engine::JoinQuery& query) const;

  const engine::Database& database() const { return database_; }
  const sim::PerformanceProfile& profile() const { return config_.profile; }
  const std::string& name() const { return config_.site_name; }
  double simulated_time_seconds() const { return simulated_time_; }

 private:
  double CostOf(const engine::WorkCounters& work);
  void PassTime(double elapsed);

  LocalDbsConfig config_;
  Rng rng_;
  engine::Database database_;
  engine::Executor executor_;
  sim::LoadBuilder load_builder_;
  sim::SystemMonitor monitor_;
  engine::SelectQuery probing_scan_;
  engine::SelectQuery probing_index_range_;
  sim::EnvironmentShift shift_;
  double simulated_time_ = 0.0;
};

}  // namespace mscm::mdbs

#endif  // MSCM_MDBS_LOCAL_DBS_H_
