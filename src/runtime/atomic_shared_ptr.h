// A publish/subscribe slot for immutable snapshots: writers store() a new
// std::shared_ptr, readers load() the current one.
//
// In normal builds this is std::atomic<std::shared_ptr<T>> (lock-free-ish:
// libstdc++ guards the pointer word with an embedded spin bit, so readers
// never block on a writer's mutex). ThreadSanitizer cannot see that internal
// spin bit, so under TSan every load()/store() pair is reported as a data
// race inside the library; the TSan build therefore swaps in a mutex-guarded
// slot with identical semantics, keeping sanitizer runs signal-clean.

// Every load()/store() performs shared atomic RMWs (refcount bumps plus the
// slot's own synchronization), so this is a *cold-path* primitive: hot
// readers go through the epoch-based EpochPublished raw read instead (see
// epoch.h). Each call is tallied by RmwProbe so bench/micro_runtime can
// verify the estimate hot path never touches one.

#ifndef MSCM_RUNTIME_ATOMIC_SHARED_PTR_H_
#define MSCM_RUNTIME_ATOMIC_SHARED_PTR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "runtime/rmw_probe.h"

#if defined(__SANITIZE_THREAD__)
#define MSCM_THREAD_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MSCM_THREAD_SANITIZER 1
#endif
#endif

namespace mscm::runtime {

template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;
  explicit AtomicSharedPtr(std::shared_ptr<T> initial)
      : ptr_(std::move(initial)) {}

  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

#if defined(MSCM_THREAD_SANITIZER)
  std::shared_ptr<T> load() const {
    RmwProbe::Count(2);  // mutex + refcount
    std::lock_guard<std::mutex> lock(mutex_);
    return ptr_;
  }

  void store(std::shared_ptr<T> next) {
    // Swap under the lock; the old snapshot's destructor (potentially a
    // whole catalog) runs after release.
    RmwProbe::Count(2);
    std::lock_guard<std::mutex> lock(mutex_);
    ptr_.swap(next);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<T> ptr_;
#else
  std::shared_ptr<T> load() const {
    RmwProbe::Count(2);  // embedded spin bit + refcount
    return ptr_.load(std::memory_order_acquire);
  }

  void store(std::shared_ptr<T> next) {
    RmwProbe::Count(2);
    ptr_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<T>> ptr_;
#endif
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_ATOMIC_SHARED_PTR_H_
