#include "runtime/estimate_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <utility>

#include "runtime/rmw_probe.h"

namespace mscm::runtime {

namespace {

// Slots a key can land in within its shard: enough to ride out a few hash
// collisions, small enough that a miss stays a handful of compares.
constexpr size_t kProbeWindow = 4;

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;  // FNV-1a prime
  return h;
}

uint64_t QuantizeFeature(double f, double quantum) {
  if (quantum > 0.0) {
    return static_cast<uint64_t>(
        static_cast<int64_t>(std::llround(f / quantum)));
  }
  return std::bit_cast<uint64_t>(f);
}

// Finalizer (murmur3 fmix64): FNV-1a's closing multiply leaves the low bits
// poorly diffused, and the slot index comes from the low bits — without this,
// near-identical feature vectors cluster into the same slots and thrash.
uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

uint64_t HashKey(const std::string& site, int class_id,
                 const std::vector<double>& features, double quantum) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  h = Mix(h, std::hash<std::string>{}(site));
  h = Mix(h, static_cast<uint64_t>(class_id));
  for (double f : features) h = Mix(h, QuantizeFeature(f, quantum));
  return Avalanche(h);
}

}  // namespace

EstimateCache::EstimateCache(const EstimateCacheConfig& config) {
  if (config.capacity_per_thread == 0) return;
  slots_per_thread_ = NextPow2(std::max<size_t>(1, config.capacity_per_thread));
  slot_mask_ = slots_per_thread_ - 1;
  feature_quantum_ = config.feature_quantum;
}

EstimateCache::~EstimateCache() {
  // Collect every pinned tracker before releasing any: dropping a tracker's
  // last reference joins its prober thread, whose state-change callback may
  // call InvalidateSite on this cache — so the version cells (members,
  // destroyed after this body) must still be intact while the joins run.
  std::vector<std::shared_ptr<ContentionTracker>> retired;
  for (auto& slot : shards_) {
    ThreadShard* shard = slot.load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    for (Slot& s : shard->slots) {
      if (s.tracker != nullptr) retired.push_back(std::move(s.tracker));
    }
    delete shard;
  }
  retired.clear();
}

EstimateCache::ThreadShard* EstimateCache::LocalShard(bool create) {
  const int slot = ThreadRegistry::CurrentSlot();
  if (slot < 0) return nullptr;  // overflow threads bypass the cache
  ThreadShard* shard = shards_[slot].load(std::memory_order_acquire);
  if (shard == nullptr && create) {
    shard = new ThreadShard();
    shard->slots.resize(slots_per_thread_);
    shards_[slot].store(shard, std::memory_order_release);
  }
  return shard;
}

const EstimateCache::VersionCell* EstimateCache::CellFor(
    const std::string& site, ThreadShard& shard) {
  auto memo = shard.cell_memo.find(site);
  if (memo != shard.cell_memo.end()) return memo->second;
  const VersionCell* cell;
  {
    RmwProbe::Count();  // cells_mutex_ — first insert for a site per thread
    std::lock_guard<std::mutex> lock(cells_mutex_);
    auto& owned = site_cells_[site];
    if (owned == nullptr) owned = std::make_unique<VersionCell>(0);
    cell = owned.get();
  }
  shard.cell_memo.emplace(site, cell);
  return cell;
}

const EstimateCache::VersionCell* EstimateCache::StateCellFor(
    const std::string& site, int state, ThreadShard& shard) {
  const std::pair<std::string, int> key(site, state);
  auto memo = shard.state_cell_memo.find(key);
  if (memo != shard.state_cell_memo.end()) return memo->second;
  const VersionCell* cell;
  {
    RmwProbe::Count();  // cells_mutex_ — first insert for (site, state)
    std::lock_guard<std::mutex> lock(cells_mutex_);
    auto& owned = site_state_cells_[key];
    if (owned == nullptr) owned = std::make_unique<VersionCell>(0);
    cell = owned.get();
  }
  shard.state_cell_memo.emplace(key, cell);
  return cell;
}

bool EstimateCache::Lookup(const std::string& site, int class_id,
                           const std::vector<double>& features, uint64_t epoch,
                           EstimateResponse* response) {
  if (!enabled()) return false;
  ThreadShard* shard = LocalShard(/*create=*/false);
  if (shard == nullptr) return false;
  const uint64_t hash = HashKey(site, class_id, features, feature_quantum_);
  for (size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = shard->slots[(hash + i) & slot_mask_];
    if (!slot.occupied || slot.hash != hash) continue;
    if (slot.class_id != class_id) continue;
    if (slot.site != site) continue;
    if (slot.feature_bits.size() != features.size()) continue;
    bool equal = true;
    for (size_t j = 0; j < features.size(); ++j) {
      if (slot.feature_bits[j] !=
          QuantizeFeature(features[j], feature_quantum_)) {
        equal = false;
        break;
      }
    }
    if (!equal) continue;
    // Key matches — validity: the lazy invalidation cell, the catalog
    // epoch, then the lock-free probe against the tracker. All loads; the
    // only RMWs below are on the retire path (invalidation events, never
    // the steady-state hit).
    const bool cell_dead =
        slot.site_cell->load(std::memory_order_acquire) != slot.site_version ||
        slot.state_cell->load(std::memory_order_acquire) !=
            slot.state_cell_version;
    const double cost = slot.tracker->published_probing_cost();
    if (cell_dead || slot.epoch != epoch ||
        slot.tracker->state_version() != slot.state_version ||
        !(cost > slot.state_lo && cost <= slot.state_hi)) {
      if (cell_dead || slot.epoch == epoch) {
        // Dead for good (invalidated, or state moved under the current
        // catalog): retire now so the tracker pin is released promptly.
        // An entry that merely belongs to an older catalog epoch is left
        // for natural clobbering — a concurrent reader of an older epoch
        // may still hit it.
        std::shared_ptr<ContentionTracker> retire = std::move(slot.tracker);
        slot = Slot{};
        RmwProbe::Count(2);  // invalidation counter + tracker refcount drop
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      continue;
    }
    *response = slot.response;
    return true;
  }
  return false;
}

void EstimateCache::Insert(const std::string& site, int class_id,
                           const std::vector<double>& features, uint64_t epoch,
                           const InsertContext& context,
                           const EstimateResponse& response) {
  if (!enabled() || context.tracker == nullptr) return;
  ThreadShard* shard = LocalShard(/*create=*/true);
  if (shard == nullptr) return;
  const uint64_t hash = HashKey(site, class_id, features, feature_quantum_);
  const VersionCell* cell = CellFor(site, *shard);

  RmwProbe::Count();  // the slot's tracker pin (shared_ptr copy below)
  Slot fresh;
  fresh.occupied = true;
  fresh.class_id = class_id;
  fresh.hash = hash;
  fresh.epoch = epoch;
  fresh.state_version = context.state_version;
  fresh.state_lo = context.state_lo;
  fresh.state_hi = context.state_hi;
  fresh.site_cell = cell;
  fresh.site_version = cell->load(std::memory_order_acquire);
  const VersionCell* state_cell = StateCellFor(site, response.state, *shard);
  fresh.state_cell = state_cell;
  fresh.state_cell_version = state_cell->load(std::memory_order_acquire);
  fresh.site = site;
  fresh.feature_bits.reserve(features.size());
  for (double f : features) {
    fresh.feature_bits.push_back(QuantizeFeature(f, feature_quantum_));
  }
  fresh.tracker = context.tracker;
  fresh.response = response;

  // Reuse the same key's slot or a free one in the window; otherwise clobber
  // the key's home slot (direct-mapped replacement — no LRU bookkeeping on
  // the hot path).
  Slot* victim = &shard->slots[hash & slot_mask_];
  for (size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = shard->slots[(hash + i) & slot_mask_];
    if (!slot.occupied) {
      victim = &slot;
      break;
    }
    if (slot.hash == hash && slot.class_id == class_id && slot.site == site &&
        slot.feature_bits == fresh.feature_bits) {
      victim = &slot;
      break;
    }
  }
  std::shared_ptr<ContentionTracker> retired = std::move(victim->tracker);
  if (retired != nullptr) RmwProbe::Count();  // clobbered entry's pin drops
  *victim = std::move(fresh);
}

void EstimateCache::InvalidateSite(const std::string& site) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(cells_mutex_);
  auto& cell = site_cells_[site];
  if (cell == nullptr) cell = std::make_unique<VersionCell>(0);
  cell->fetch_add(1, std::memory_order_release);
}

void EstimateCache::InvalidateSiteState(const std::string& site, int state) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(cells_mutex_);
  auto& cell = site_state_cells_[{site, state}];
  if (cell == nullptr) cell = std::make_unique<VersionCell>(0);
  cell->fetch_add(1, std::memory_order_release);
}

void EstimateCache::InvalidateAll() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(cells_mutex_);
  // Every occupied entry recorded a cell at insert, so bumping every cell
  // reaches every entry.
  for (auto& [site, cell] : site_cells_) {
    cell->fetch_add(1, std::memory_order_release);
  }
}

}  // namespace mscm::runtime
