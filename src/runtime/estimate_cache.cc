#include "runtime/estimate_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <utility>

namespace mscm::runtime {

namespace {

// Slots a key can land in within its shard: enough to ride out a few hash
// collisions, small enough that a miss stays a handful of compares.
constexpr size_t kProbeWindow = 4;

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;  // FNV-1a prime
  return h;
}

class SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag& lock) : lock_(lock) {
    while (lock_.test_and_set(std::memory_order_acquire)) {
      while (lock_.test(std::memory_order_relaxed)) {
      }
    }
  }
  ~SpinGuard() { lock_.clear(std::memory_order_release); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  std::atomic_flag& lock_;
};

uint64_t QuantizeFeature(double f, double quantum) {
  if (quantum > 0.0) {
    return static_cast<uint64_t>(
        static_cast<int64_t>(std::llround(f / quantum)));
  }
  return std::bit_cast<uint64_t>(f);
}

// Finalizer (murmur3 fmix64): FNV-1a's closing multiply leaves the low bits
// poorly diffused, and the slot index comes from the low bits — without this,
// near-identical feature vectors cluster into the same slots and thrash.
uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

uint64_t HashKey(const std::string& site, int class_id,
                 const std::vector<double>& features, double quantum) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  h = Mix(h, std::hash<std::string>{}(site));
  h = Mix(h, static_cast<uint64_t>(class_id));
  for (double f : features) h = Mix(h, QuantizeFeature(f, quantum));
  return Avalanche(h);
}

}  // namespace

EstimateCache::EstimateCache(const EstimateCacheConfig& config) {
  if (config.capacity == 0) return;
  const size_t num_shards = NextPow2(std::max<size_t>(1, config.shards));
  const size_t per_shard =
      NextPow2(std::max<size_t>(1, (config.capacity + num_shards - 1) /
                                       num_shards));
  slot_mask_ = per_shard - 1;
  feature_quantum_ = config.feature_quantum;
  shards_ = std::vector<Shard>(num_shards);
  for (Shard& shard : shards_) shard.slots.resize(per_shard);
}

EstimateCache::~EstimateCache() {
  // Retire every entry while the shard storage is still intact: dropping a
  // tracker's last reference joins its prober thread, whose state-change
  // callback may be mid-flight into these shards.
  InvalidateAll();
}

bool EstimateCache::Lookup(const std::string& site, int class_id,
                           const std::vector<double>& features, uint64_t epoch,
                           EstimateResponse* response) {
  if (shards_.empty()) return false;
  const uint64_t hash = HashKey(site, class_id, features, feature_quantum_);
  Shard& shard = ShardFor(hash);
  // Declared before the guard so an evicted tracker reference is released
  // *after* the shard lock: destroying a tracker joins its prober thread,
  // which must not happen while we hold a lock its callback may want.
  std::shared_ptr<ContentionTracker> retired;
  SpinGuard guard(shard.lock);
  for (size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = shard.slots[(hash + i) & slot_mask_];
    if (!slot.occupied || slot.hash != hash) continue;
    if (slot.epoch != epoch || slot.class_id != class_id) continue;
    if (slot.site != site) continue;
    if (slot.feature_bits.size() != features.size()) continue;
    bool equal = true;
    for (size_t j = 0; j < features.size(); ++j) {
      if (slot.feature_bits[j] !=
          QuantizeFeature(features[j], feature_quantum_)) {
        equal = false;
        break;
      }
    }
    if (!equal) continue;
    // Key matches — now the lock-free validity probe against the tracker.
    const double cost = slot.tracker->published_probing_cost();
    if (slot.tracker->state_version() != slot.state_version ||
        !(cost > slot.state_lo && cost <= slot.state_hi)) {
      retired = std::move(slot.tracker);
      slot = Slot{};
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    *response = slot.response;
    return true;
  }
  return false;
}

void EstimateCache::Insert(const std::string& site, int class_id,
                           const std::vector<double>& features, uint64_t epoch,
                           const InsertContext& context,
                           const EstimateResponse& response) {
  if (shards_.empty() || context.tracker == nullptr) return;
  const uint64_t hash = HashKey(site, class_id, features, feature_quantum_);
  Shard& shard = ShardFor(hash);

  Slot fresh;
  fresh.occupied = true;
  fresh.class_id = class_id;
  fresh.hash = hash;
  fresh.epoch = epoch;
  fresh.state_version = context.state_version;
  fresh.state_lo = context.state_lo;
  fresh.state_hi = context.state_hi;
  fresh.site = site;
  fresh.feature_bits.reserve(features.size());
  for (double f : features) {
    fresh.feature_bits.push_back(QuantizeFeature(f, feature_quantum_));
  }
  fresh.tracker = context.tracker;
  fresh.response = response;

  std::shared_ptr<ContentionTracker> retired;  // released after the lock
  SpinGuard guard(shard.lock);
  // Reuse the same key's slot or a free one in the window; otherwise clobber
  // the key's home slot (direct-mapped replacement — no LRU bookkeeping on
  // the hot path).
  Slot* victim = &shard.slots[hash & slot_mask_];
  for (size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = shard.slots[(hash + i) & slot_mask_];
    if (!slot.occupied) {
      victim = &slot;
      break;
    }
    if (slot.hash == hash && slot.class_id == class_id && slot.site == site &&
        slot.feature_bits == fresh.feature_bits) {
      victim = &slot;
      break;
    }
  }
  retired = std::move(victim->tracker);
  *victim = std::move(fresh);
}

size_t EstimateCache::InvalidateSite(const std::string& site) {
  if (shards_.empty()) return 0;
  size_t evicted = 0;
  std::vector<std::shared_ptr<ContentionTracker>> retired;
  for (Shard& shard : shards_) {
    SpinGuard guard(shard.lock);
    for (Slot& slot : shard.slots) {
      if (!slot.occupied || slot.site != site) continue;
      retired.push_back(std::move(slot.tracker));
      slot = Slot{};
      ++evicted;
    }
  }
  invalidations_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

size_t EstimateCache::InvalidateAll() {
  if (shards_.empty()) return 0;
  size_t evicted = 0;
  std::vector<std::shared_ptr<ContentionTracker>> retired;
  for (Shard& shard : shards_) {
    SpinGuard guard(shard.lock);
    for (Slot& slot : shard.slots) {
      if (!slot.occupied) continue;
      retired.push_back(std::move(slot.tracker));
      slot = Slot{};
      ++evicted;
    }
  }
  invalidations_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

}  // namespace mscm::runtime
