#include "runtime/adaptation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "core/cost_model.h"
#include "runtime/estimation_service.h"
#include "runtime/rmw_probe.h"

namespace mscm::runtime {

namespace {

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Single-writer increment on an atomic counter (the RuntimeCounters idiom):
// a plain load + store, not a fetch_add — legal because exactly one thread
// ever writes the field.
void BumpOwned(std::atomic<uint64_t>& field) {
  field.store(field.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
}

}  // namespace

std::string AdaptationStats::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "accepted=%llu dropped=%llu rejected=%llu drained=%llu ignored=%llu "
      "updates_applied=%llu updates_rejected=%llu adaptations_published=%llu "
      "escalations=%llu lost_races=%llu lineage_resets=%llu "
      "stale_gen_discarded=%llu stale_gen_downweighted=%llu "
      "max_generation_lag=%llu",
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(dropped),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(drained),
      static_cast<unsigned long long>(ignored),
      static_cast<unsigned long long>(updates_applied),
      static_cast<unsigned long long>(updates_rejected),
      static_cast<unsigned long long>(adaptations_published),
      static_cast<unsigned long long>(escalations),
      static_cast<unsigned long long>(lost_races),
      static_cast<unsigned long long>(lineage_resets),
      static_cast<unsigned long long>(stale_gen_discarded),
      static_cast<unsigned long long>(stale_gen_downweighted),
      static_cast<unsigned long long>(max_generation_lag));
  return buf;
}

AdaptationController::AdaptationController(EstimationService* service,
                                           ModelRefreshDaemon* daemon,
                                           AdaptationConfig config)
    : service_(service), daemon_(daemon), config_(config) {
  ring_capacity_ = NextPow2(std::max<size_t>(2, config_.buffer_capacity));
  ring_mask_ = ring_capacity_ - 1;
  if (config_.start_thread) Start();
}

AdaptationController::~AdaptationController() {
  Stop();
  for (auto& slot : rings_) {
    delete slot.load(std::memory_order_acquire);
  }
}

bool AdaptationController::ValidReport(const FeedbackReport& report) {
  if (report.site.empty() || report.site.size() > kMaxSiteLength) return false;
  if (report.features.size() > kMaxFeatures) return false;
  if (!std::isfinite(report.actual_cost) || report.actual_cost <= 0.0) {
    return false;
  }
  if (std::isnan(report.probing_cost)) return false;
  if (report.probing_cost >= 0.0 && !std::isfinite(report.probing_cost)) {
    return false;
  }
  for (const double f : report.features) {
    if (!std::isfinite(f)) return false;
  }
  return true;
}

void AdaptationController::FillSample(const FeedbackReport& report,
                                      Sample& sample) {
  std::memcpy(sample.site, report.site.data(), report.site.size());
  sample.site[report.site.size()] = '\0';
  sample.site_len = static_cast<uint8_t>(report.site.size());
  sample.class_id = report.class_id;
  sample.num_features = static_cast<uint8_t>(report.features.size());
  std::copy(report.features.begin(), report.features.end(), sample.features);
  sample.actual_cost = report.actual_cost;
  sample.probing_cost = report.probing_cost;
  sample.model_generation = report.model_generation;
}

AdaptationController::Ring* AdaptationController::LocalRing() {
  const int slot = ThreadRegistry::CurrentSlot();
  if (slot < 0) return nullptr;
  Ring* ring = rings_[slot].load(std::memory_order_acquire);
  if (ring == nullptr) {
    ring = new Ring(ring_capacity_);
    rings_[slot].store(ring, std::memory_order_release);
  }
  return ring;
}

bool AdaptationController::Record(const FeedbackReport& report) {
  Ring* ring = LocalRing();
  if (ring == nullptr) {
    // No registry slot: shared overflow queue — real RMWs, counted.
    if (!ValidReport(report)) {
      RmwProbe::Count();
      overflow_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    RmwProbe::Count(2);  // overflow mutex + counter
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    if (overflow_.size() >= ring_capacity_) {
      overflow_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    overflow_.emplace_back();
    FillSample(report, overflow_.back());
    overflow_accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (!ValidReport(report)) {
    BumpOwned(ring->rejected);
    return false;
  }
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  const uint64_t tail = ring->tail.load(std::memory_order_acquire);
  if (head - tail >= ring_capacity_) {
    // Full: feedback is advisory, dropping is always safe. Never block or
    // spin on the serving thread.
    BumpOwned(ring->dropped);
    return false;
  }
  FillSample(report, ring->buffer[head & ring_mask_]);
  ring->head.store(head + 1, std::memory_order_release);
  BumpOwned(ring->accepted);
  return true;
}

size_t AdaptationController::DrainOnce() {
  std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  size_t consumed = 0;

  for (auto& slot : rings_) {
    Ring* ring = slot.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    while (tail != head) {
      ProcessSample(ring->buffer[tail & ring_mask_]);
      ++tail;
      ++consumed;
    }
    ring->tail.store(tail, std::memory_order_release);
  }
  {
    std::deque<Sample> pending;
    {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      pending.swap(overflow_);
    }
    for (const Sample& sample : pending) {
      ProcessSample(sample);
      ++consumed;
    }
  }
  drained_.fetch_add(consumed, std::memory_order_relaxed);

  // Post-pass: escalate stalled groups, publish the rest. Escalation wins —
  // publishing rows from a lineage we just declared broken would only delay
  // the re-derivation's correction. Unseeded groups (reset by a lost race or
  // lineage orphaning on an earlier pass) are erased rather than kept: the
  // next report for the key re-inserts and re-seeds, and a retired site's
  // key must not pin an empty Group forever.
  for (auto it = groups_.begin(); it != groups_.end();) {
    Group& group = it->second;
    if (!group.seeded) {
      it = groups_.erase(it);
      continue;
    }
    if (group.blown || ShouldEscalate(group)) {
      Escalate(it->first, group);
      it = groups_.erase(it);
      continue;
    }
    MaybePublish(it->first, group);
    ++it;
  }
  return consumed;
}

void AdaptationController::ProcessSample(const Sample& sample) {
  const std::string site(sample.site, sample.site_len);

  // Price the same request through the serving path: yields the current
  // model's estimate, the resolved contention state and the serving
  // generation — everything the estimators and signals need.
  EstimateRequest request;
  request.site = site;
  request.class_id = sample.class_id;
  request.features.assign(sample.features,
                          sample.features + sample.num_features);
  request.probing_cost = sample.probing_cost;

  // Width guard before the serving path (CheckFeatureWidth aborts on a
  // short vector — the wire is not allowed to crash the process).
  {
    const auto snapshot = service_->CatalogSnapshot();
    const core::CompiledEquations* equations =
        snapshot->FindCompiled(site, sample.class_id);
    if (equations == nullptr ||
        request.features.size() < equations->min_features()) {
      ignored_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const EstimateResponse response = service_->Estimate(request);
  if (!response.ok()) {
    ignored_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Generation-aware weighting: how many publishes behind the serving
  // lineage was this report priced? The serving generation only moves
  // forward within a lineage; a response generation *below* the sample's
  // means the lineage itself was replaced (re-register / re-derivation),
  // which the reset below handles — treat that as lag 0 here.
  uint64_t lag = 0;
  if (response.model_generation > sample.model_generation) {
    lag = response.model_generation - sample.model_generation;
  }
  // Single writer (ProcessSample runs under drain_mutex_): plain max.
  if (lag > max_generation_lag_.load(std::memory_order_relaxed)) {
    max_generation_lag_.store(lag, std::memory_order_relaxed);
  }
  if (lag > config_.generation_discard_lag) {
    // Too stale: the report describes a model several corrections ago.
    // Folding it in would bias the estimators toward errors the serving
    // lineage already fixed. Dropped before it can touch group state.
    stale_gen_discarded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const auto key = std::make_pair(site, static_cast<int>(sample.class_id));
  const auto [group_it, group_inserted] = groups_.try_emplace(key);
  Group& group = group_it->second;
  if (group.seeded && group.generation != response.model_generation) {
    // An externally published model (full re-derivation, or a competing
    // adapter) reset the lineage: orphan the accumulators and re-seed.
    lineage_resets_.fetch_add(1, std::memory_order_relaxed);
    group = Group{};
  }
  if (!group.seeded && !ReseedGroup(group, site, sample.class_id)) {
    // No serving model to seed from — the site may have been retired
    // between the estimate above and now. Do not leave an empty Group
    // pinned in the map (a straggling report for a retired site would
    // otherwise leak one group per key, forever).
    groups_.erase(group_it);
    ignored_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  group.last_generation_lag = lag;

  UpdateSignals(group, response.estimate_seconds, sample.actual_cost,
                response.state);

  // Fold the observation into the state's estimator, seeding it from the
  // serving row on first touch. z = (1, selected features) — the compiled
  // row's own basis, so a published row slots straight into the table.
  const auto snapshot = service_->CatalogSnapshot();
  const core::CostModel* model = snapshot->Find(site, sample.class_id);
  if (model == nullptr || model->generation() != group.generation) {
    lineage_resets_.fetch_add(1, std::memory_order_relaxed);
    groups_.erase(group_it);
    return;
  }
  const core::CompiledEquations& equations = model->compiled();
  if (response.state < 0 || response.state >= equations.num_states()) return;
  const size_t stride = equations.num_selected() + 1;

  StateAccumulator& acc = group.states[response.state];
  if (acc.rls == nullptr) {
    const double* row = equations.row(response.state);
    std::vector<double> theta(row, row + stride);
    std::vector<double> covariance;
    const auto& persisted = model->adaptation().states;
    if (const auto it = persisted.find(response.state);
        it != persisted.end() && !it->second.covariance.empty()) {
      covariance = it->second.covariance;
      acc.base_updates = it->second.updates;
    } else {
      covariance.assign(stride * stride, 0.0);
      for (size_t i = 0; i < stride; ++i) {
        covariance[i * stride + i] = config_.rls.initial_variance;
      }
    }
    acc.rls = std::make_unique<stats::RlsEstimator>(
        std::move(theta), std::move(covariance), config_.rls);
  }

  std::vector<double> z(stride);
  z[0] = 1.0;
  equations.GatherSelected(request.features.data(), z.data() + 1);
  // Lagged-but-tolerated reports fold in at reduced weight: each generation
  // of lag halves (by default) the observation's influence on the
  // estimator, so stragglers refine rather than fight fresh feedback.
  const double weight =
      lag == 0 ? 1.0
               : std::pow(std::clamp(config_.generation_downweight, 1e-9, 1.0),
                          static_cast<double>(lag));
  if (weight < 1.0) {
    stale_gen_downweighted_.fetch_add(1, std::memory_order_relaxed);
  }
  if (acc.rls->UpdateWeighted(z.data(), sample.actual_cost, weight)) {
    updates_applied_.fetch_add(1, std::memory_order_relaxed);
    ++acc.new_updates;
  } else {
    updates_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (acc.rls->blown_up()) group.blown = true;
}

bool AdaptationController::ReseedGroup(Group& group, const std::string& site,
                                       core::QueryClassId class_id) {
  const auto snapshot = service_->CatalogSnapshot();
  const core::CostModel* model = snapshot->Find(site, class_id);
  if (model == nullptr) return false;
  group = Group{};
  group.seeded = true;
  group.generation = model->generation();
  group.num_states = model->compiled().num_states();
  group.baseline_hist.assign(static_cast<size_t>(group.num_states), 0);
  group.recent_hist.assign(static_cast<size_t>(group.num_states), 0);
  return true;
}

void AdaptationController::UpdateSignals(Group& group, double estimated,
                                         double observed, int state) {
  ++group.samples;
  const double rel =
      std::fabs(estimated - observed) / std::max(std::fabs(observed), 1e-12);
  if (!group.ewma_primed) {
    group.ewma_rel_error = rel;
    group.ewma_primed = true;
    group.best_ewma = rel;
    group.since_improvement = 0;
  } else {
    group.ewma_rel_error = config_.ewma_alpha * rel +
                           (1.0 - config_.ewma_alpha) * group.ewma_rel_error;
    if (group.ewma_rel_error <
        group.best_ewma * (1.0 - config_.stall_improvement)) {
      group.best_ewma = group.ewma_rel_error;
      group.since_improvement = 0;
    } else {
      ++group.since_improvement;
    }
  }

  if (state < 0 || state >= group.num_states) return;
  if (group.baseline_total < config_.min_samples_for_drift) {
    ++group.baseline_hist[state];
    ++group.baseline_total;
    return;
  }
  group.recent_states.push_back(state);
  ++group.recent_hist[state];
  while (group.recent_states.size() > config_.drift_window) {
    --group.recent_hist[group.recent_states.front()];
    group.recent_states.pop_front();
  }
}

double AdaptationController::DriftDistance(const Group& group) {
  if (group.baseline_total == 0 || group.recent_states.empty()) return 0.0;
  double l1 = 0.0;
  for (int s = 0; s < group.num_states; ++s) {
    const double base = static_cast<double>(group.baseline_hist[s]) /
                        static_cast<double>(group.baseline_total);
    const double recent = static_cast<double>(group.recent_hist[s]) /
                          static_cast<double>(group.recent_states.size());
    l1 += std::fabs(base - recent);
  }
  return l1 / 2.0;  // total variation: 0 identical, 1 disjoint
}

bool AdaptationController::ShouldEscalate(const Group& group) const {
  if (group.since_improvement >= config_.stall_window &&
      group.ewma_rel_error > config_.stall_error_threshold) {
    return true;
  }
  if (group.recent_states.size() >=
          std::min(config_.min_samples_for_drift, config_.drift_window) &&
      DriftDistance(group) > config_.drift_threshold) {
    return true;
  }
  return false;
}

void AdaptationController::Escalate(const std::pair<std::string, int>& key,
                                    Group& group) {
  escalations_.fetch_add(1, std::memory_order_relaxed);
  if (daemon_ != nullptr) {
    daemon_->RequestRefresh(key.first,
                            static_cast<core::QueryClassId>(key.second));
  }
  // Whatever model the slow path publishes starts a new lineage; the caller
  // erases the group and the next report re-seeds from the new model.
  group = Group{};
}

void AdaptationController::MaybePublish(
    const std::pair<std::string, int>& key, Group& group) {
  std::vector<int> changed;
  for (const auto& [state, acc] : group.states) {
    if (acc.rls != nullptr && !acc.rls->blown_up() &&
        acc.new_updates >= config_.min_updates_to_publish) {
      changed.push_back(state);
    }
  }
  if (changed.empty()) return;

  const auto snapshot = service_->CatalogSnapshot();
  const core::CostModel* current = snapshot->Find(
      key.first, static_cast<core::QueryClassId>(key.second));
  if (current == nullptr || current->generation() != group.generation) {
    lineage_resets_.fetch_add(1, std::memory_order_relaxed);
    group = Group{};
    return;
  }

  core::ModelAdaptationState next = current->adaptation();
  const uint64_t next_generation = group.generation + 1;
  next.generation = next_generation;
  next.forgetting = config_.rls.forgetting;
  for (const int state : changed) {
    StateAccumulator& acc = group.states[state];
    core::StateAdaptation& slot = next.states[state];
    slot.row = acc.rls->coefficients();
    slot.covariance = acc.rls->covariance();
    slot.updates = acc.base_updates + acc.rls->updates();
  }

  if (service_->ApplyAdaptedModel(key.first, current->WithAdaptation(next),
                                  group.generation, changed)) {
    adaptations_published_.fetch_add(1, std::memory_order_relaxed);
    group.generation = next_generation;
    for (const int state : changed) group.states[state].new_updates = 0;
  } else {
    // Beaten by a concurrent register/adapt: the catalog moved between the
    // generation check above and the publish. Start over from whatever won.
    lost_races_.fetch_add(1, std::memory_order_relaxed);
    group = Group{};
  }
}

void AdaptationController::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (drain_thread_.joinable()) return;
  stop_ = false;
  drain_thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(thread_mutex_);
    while (!stop_) {
      thread_cv_.wait_for(lock, config_.drain_interval,
                          [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      DrainOnce();
      lock.lock();
    }
  });
}

void AdaptationController::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!drain_thread_.joinable()) return;
    stop_ = true;
  }
  thread_cv_.notify_all();
  drain_thread_.join();
  // Final sweep so reports buffered after the last scheduled drain are not
  // silently discarded at teardown.
  DrainOnce();
}

void AdaptationController::DetachSite(const std::string& site) {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  const auto first = groups_.lower_bound({site, std::numeric_limits<int>::min()});
  auto last = first;
  while (last != groups_.end() && last->first.first == site) ++last;
  groups_.erase(first, last);
}

size_t AdaptationController::NumGroups() const {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  return groups_.size();
}

AdaptationStats AdaptationController::Stats() const {
  AdaptationStats stats;
  for (const auto& slot : rings_) {
    const Ring* ring = slot.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    stats.accepted += ring->accepted.load(std::memory_order_relaxed);
    stats.dropped += ring->dropped.load(std::memory_order_relaxed);
    stats.rejected += ring->rejected.load(std::memory_order_relaxed);
  }
  stats.accepted += overflow_accepted_.load(std::memory_order_relaxed);
  stats.dropped += overflow_dropped_.load(std::memory_order_relaxed);
  stats.rejected += overflow_rejected_.load(std::memory_order_relaxed);
  stats.drained = drained_.load(std::memory_order_relaxed);
  stats.ignored = ignored_.load(std::memory_order_relaxed);
  stats.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  stats.updates_rejected = updates_rejected_.load(std::memory_order_relaxed);
  stats.adaptations_published =
      adaptations_published_.load(std::memory_order_relaxed);
  stats.escalations = escalations_.load(std::memory_order_relaxed);
  stats.lost_races = lost_races_.load(std::memory_order_relaxed);
  stats.lineage_resets = lineage_resets_.load(std::memory_order_relaxed);
  stats.stale_gen_discarded =
      stale_gen_discarded_.load(std::memory_order_relaxed);
  stats.stale_gen_downweighted =
      stale_gen_downweighted_.load(std::memory_order_relaxed);
  stats.max_generation_lag =
      max_generation_lag_.load(std::memory_order_relaxed);
  return stats;
}

AdaptationKeyStatus AdaptationController::Status(
    const std::string& site, core::QueryClassId class_id) const {
  AdaptationKeyStatus status;
  std::lock_guard<std::mutex> lock(drain_mutex_);
  const auto it = groups_.find({site, static_cast<int>(class_id)});
  if (it == groups_.end()) return status;
  const Group& group = it->second;
  status.seeded = group.seeded;
  status.generation = group.generation;
  status.ewma_rel_error = group.ewma_rel_error;
  status.samples = group.samples;
  status.generation_lag = group.last_generation_lag;
  for (const auto& [state, acc] : group.states) {
    if (acc.rls != nullptr) status.rls_updates += acc.rls->updates();
  }
  return status;
}

}  // namespace mscm::runtime
