#include "runtime/estimation_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "mdbs/agent.h"
#include "runtime/rmw_probe.h"

namespace mscm::runtime {

namespace {

// A request must be priceable before it touches any shared structure: a
// non-finite feature would poison the estimate (and the estimate cache,
// which keys on the feature vector), a NaN probing cost would silently fall
// through the `>= 0` explicit-probe check into the cached-probe path, and a
// +inf probing cost would map to the top state and price garbage.
bool RequestIsValid(const EstimateRequest& request) {
  for (const double f : request.features) {
    if (!std::isfinite(f)) return false;
  }
  if (std::isnan(request.probing_cost)) return false;
  if (request.probing_cost >= 0.0 && !std::isfinite(request.probing_cost)) {
    return false;
  }
  return true;  // any finite negative value means "use the cached probe"
}

// Cache hits record latency on a 1-in-N sample (RecordN weights the sample
// by the period, so the histogram's count still reflects every hit). An
// unsampled hit path stays exactly as cheap as before — no clock reads —
// and a sampled one adds two clock reads plus a per-thread histogram
// stripe store: still zero shared atomic RMWs. Without this, the estimate
// latency histogram held only cold-miss samples, so a *faster* cached
// configuration reported *higher* p50/p99 than the uncached one.
//
// The sample period counts *hits*, not lookup attempts: the soak's
// conservation checker caught the attempt-counting variant weighting each
// sampled hit by the period even when most attempts in the window missed
// (and had already recorded their own latency), pushing the histogram
// count past the request count — up to ~2x on adversarial hit/miss
// interleavings. Counting hits keeps count(estimate_latency) <= requests,
// short by at most one unflushed window per thread.
constexpr uint64_t kHitLatencySamplePeriod = 64;

// Source of per-service identities for the hit sampler's thread-local
// window state (see instance_id_ in the header). Monotonic, never reused.
std::atomic<uint64_t> next_service_instance_id{1};

}  // namespace

const char* ToString(EstimateStatus s) {
  switch (s) {
    case EstimateStatus::kOk:
      return "ok";
    case EstimateStatus::kNoModel:
      return "no-model";
    case EstimateStatus::kNoProbe:
      return "no-probe";
    case EstimateStatus::kInvalidRequest:
      return "invalid-request";
  }
  return "?";
}

EstimationService::EstimationService(EstimationServiceConfig config)
    : config_(config),
      cache_(config.cache),
      trackers_(std::make_shared<const TrackerMap>()),
      stale_keys_(std::make_shared<const StaleKeySet>()),
      instance_id_(
          next_service_instance_id.fetch_add(1, std::memory_order_relaxed)),
      pool_(config.worker_threads) {}

EstimationService::~EstimationService() { StopProbing(); }

void EstimationService::StopProbing() {
  // Stop every prober before members unwind: a live prober's state-change
  // callback reaches into cache_, and replaced trackers kept alive by cache
  // entries stop when the cache retires them in its own destructor.
  const TrackerMapSnapshot map = trackers_.load();
  for (const auto& [site, tracker] : *map) tracker->Stop();
}

void EstimationService::RegisterModel(const std::string& site,
                                      core::CostModel model) {
  // Capture the partition before the model moves into the catalog; the
  // tracker's informational state field follows the newest model per site.
  const core::ContentionStates states = model.states();
  const core::QueryClassId class_id = model.class_id();
  std::lock_guard<std::mutex> lock(control_mutex_);
  RegisterModelLocked(site, std::move(model), states, class_id);
}

bool EstimationService::RegisterModelIfActive(const std::string& site,
                                              core::CostModel model) {
  const core::ContentionStates states = model.states();
  const core::QueryClassId class_id = model.class_id();
  std::lock_guard<std::mutex> lock(control_mutex_);
  // "Live" = the site still has a tracker or at least one registered model.
  // UnregisterSite removes both under this same mutex, so the check and the
  // publication are atomic against retirement.
  if (newest_class_.count(site) == 0 && trackers_.load()->count(site) == 0) {
    return false;
  }
  RegisterModelLocked(site, std::move(model), states, class_id);
  return true;
}

void EstimationService::RegisterModelLocked(
    const std::string& site, core::CostModel model,
    const core::ContentionStates& states, core::QueryClassId class_id) {
  catalog_.Register(site, std::move(model));
  {
    auto& shard = counters_.Local();
    shard.Add(shard.catalog_swaps);
  }
  newest_class_[site] = class_id;
  // A freshly registered model is by definition not stale.
  SetModelStaleLocked(site, class_id, false);
  if (auto tracker = FindTracker(site)) {
    tracker->SetStateMapper(
        [states](double cost) { return states.StateOf(cost); });
    tracker->SetStateBoundaries(states.boundaries());
  }
  // Entries priced under the previous catalog revision can never hit again
  // (the lookup epoch moved); evict the re-registered site's eagerly.
  cache_.InvalidateSite(site);
}

bool EstimationService::ApplyAdaptedModel(const std::string& site,
                                          core::CostModel model,
                                          uint64_t expected_generation,
                                          const std::vector<int>& changed_states) {
  const core::QueryClassId class_id = model.class_id();
  std::lock_guard<std::mutex> lock(control_mutex_);
  // Lost-race guard: the adaptation was derived against a specific lineage.
  // If a full re-derivation (generation reset to 0) or another adaptation
  // landed since, publishing this one would silently roll the model back.
  {
    const auto snapshot = catalog_.snapshot();
    const core::CostModel* current = snapshot->Find(site, class_id);
    if (current == nullptr ||
        current->generation() != expected_generation) {
      return false;
    }
  }
  catalog_.UpdatePreservingRevision(
      [&site, &model](core::GlobalCatalog& catalog) {
        catalog.Register(site, std::move(model));
      });
  {
    auto& shard = counters_.Local();
    shard.Add(shard.adaptations_applied);
  }
  // Only the swapped states' rows changed; every other state's cached
  // responses stay bit-correct under the preserved revision.
  for (const int state : changed_states) {
    cache_.InvalidateSiteState(site, state);
  }
  return true;
}

void EstimationService::RegisterSite(const std::string& site,
                                     ContentionTracker::ProbeFn probe) {
  ContentionTrackerConfig tracker_config;
  tracker_config.site = site;
  tracker_config.ttl = config_.probe_ttl;
  tracker_config.probe_interval = config_.probe_interval;
  tracker_config.min_probe_interval = config_.min_probe_interval;
  tracker_config.max_probe_interval = config_.max_probe_interval;
  tracker_config.probe_timeout = config_.probe_timeout;
  tracker_config.failure_retry = config_.probe_failure_retry;
  tracker_config.breaker = config_.breaker;
  tracker_config.clock = config_.clock;
  auto tracker = std::make_shared<ContentionTracker>(
      std::move(tracker_config), std::move(probe), &probe_latency_);
  // Evict the site's cached estimates the moment its contention state
  // transitions. Fired off-lock from the tracker; touches only cache_.
  tracker->SetStateChangeCallback(
      [this, site](int /*old_state*/, int /*new_state*/) {
        cache_.InvalidateSite(site);
      });

  std::lock_guard<std::mutex> lock(control_mutex_);

  // Publish the tracker before wiring its partition. RegisterModel holds
  // the same mutex, so no registration can land between publication and
  // wiring — the old order (snapshot catalog, then publish) let a racing
  // RegisterModel miss the tracker and leave the state mapper unset.
  const TrackerMapSnapshot current = trackers_.load();
  std::shared_ptr<ContentionTracker> replaced;
  if (const auto it = current->find(site); it != current->end()) {
    replaced = it->second;
  }
  auto next = std::make_shared<TrackerMap>(*current);
  (*next)[site] = tracker;
  RetiredTrackerTotals replaced_captured;
  if (replaced != nullptr) {
    // Replacing unpublishes the old tracker: swap and fold its counts
    // under one retired_mutex_ hold (see the RetiredTrackerTotals
    // atomicity contract), or a racing Stats() momentarily loses — or
    // double-counts — the old tracker's history.
    std::lock_guard<std::mutex> retired_lock(retired_mutex_);
    trackers_.Publish(TrackerMapSnapshot(std::move(next)));
    replaced_captured = CaptureTrackerTotals(*replaced);
    AddRetiredTotalsLocked(replaced_captured);
  } else {
    trackers_.Publish(TrackerMapSnapshot(std::move(next)));
  }

  // Wire the partition of the site's most recently registered model —
  // deterministic, unlike iterating the catalog's (site, class) map, whose
  // last entry depends on class-id order rather than registration order.
  const auto newest = newest_class_.find(site);
  if (newest != newest_class_.end()) {
    const auto snapshot = catalog_.snapshot();
    if (const core::CostModel* model = snapshot->Find(site, newest->second)) {
      const core::ContentionStates states = model->states();
      tracker->SetStateMapper(
          [states](double cost) { return states.StateOf(cost); });
      tracker->SetStateBoundaries(states.boundaries());
    }
  }

  tracker->Start();

  // A replaced tracker may survive for a while through cache entries that
  // pin it (invalidation is lazy — each estimate thread retires its dead
  // entries on its next lookups), so stop its prober eagerly here rather
  // than waiting for the last pin to drop; the later release of an
  // already-stopped tracker is cheap. Its terminal counters fold into the
  // retired totals so Stats() never regresses across a re-registration.
  if (replaced != nullptr) {
    replaced->Stop();
    // In-flight probe completions between the fold and the join, as above.
    std::lock_guard<std::mutex> retired_lock(retired_mutex_);
    AddRetiredTotalsLocked(
        TotalsDelta(CaptureTrackerTotals(*replaced), replaced_captured));
  }
  cache_.InvalidateSite(site);
}

void EstimationService::RegisterSite(mdbs::MdbsAgent* agent) {
  RegisterSite(agent->name(), agent->ProbeFn());
}

void EstimationService::UnregisterSite(const std::string& site) {
  std::lock_guard<std::mutex> lock(control_mutex_);

  // Unpublish the tracker first: new estimates stop finding it immediately.
  // In-flight estimates hold the old map under an epoch guard — the map
  // snapshot (and any cache entry pins) keep the tracker object alive until
  // they drain, so nothing here frees memory a reader can still touch.
  std::shared_ptr<ContentionTracker> retired;
  RetiredTrackerTotals captured;
  const TrackerMapSnapshot current = trackers_.load();
  if (const auto it = current->find(site); it != current->end()) {
    retired = it->second;
    auto next = std::make_shared<TrackerMap>(*current);
    next->erase(site);
    // Unpublish and fold under one retired_mutex_ hold (see the
    // RetiredTrackerTotals atomicity contract): a Stats() racing this
    // block sees the tracker's history either live in the map or already
    // in the retired totals — never in neither, never in both.
    std::lock_guard<std::mutex> retired_lock(retired_mutex_);
    trackers_.Publish(TrackerMapSnapshot(std::move(next)));
    captured = CaptureTrackerTotals(*retired);
    AddRetiredTotalsLocked(captured);
  }

  // Drop every (site, class) model. The snapshot swap bumps the catalog
  // revision, so cached responses priced under the old catalog can never
  // revalidate — the eager InvalidateSite below just reclaims the slots
  // sooner.
  bool had_models = false;
  {
    const auto snapshot = catalog_.snapshot();
    for (const auto& [entry_site, class_id] : snapshot->Entries()) {
      if (entry_site == site) {
        had_models = true;
        break;
      }
    }
  }
  if (had_models) {
    catalog_.Update(
        [&site](core::GlobalCatalog& catalog) { catalog.Unregister(site); });
    auto& shard = counters_.Local();
    shard.Add(shard.catalog_swaps);
  }

  // Clear the site's stale-model flags so the stale_models gauge cannot
  // leak retired keys (a racing SetModelStale for the site after this point
  // is rejected by its no-model guard).
  const StaleKeySnapshot stale = stale_keys_.load();
  bool any_stale = false;
  for (const auto& key : *stale) {
    if (key.first == site) {
      any_stale = true;
      break;
    }
  }
  if (any_stale) {
    auto next = std::make_shared<StaleKeySet>();
    for (const auto& key : *stale) {
      if (key.first != site) next->insert(key);
    }
    stale_keys_.Publish(StaleKeySnapshot(std::move(next)));
  }

  const bool had_class = newest_class_.erase(site) > 0;

  if (retired != nullptr) {
    // Stop() joins the background prober (and abandons a probe past its
    // deadline) — same blocking contract as the replace path above. Probes
    // that were still in flight at unpublication complete during the join;
    // fold whatever they added after the capture.
    retired->Stop();
    std::lock_guard<std::mutex> retired_lock(retired_mutex_);
    AddRetiredTotalsLocked(TotalsDelta(CaptureTrackerTotals(*retired), captured));
  }
  if (retired != nullptr || had_models || had_class) {
    std::lock_guard<std::mutex> retired_lock(retired_mutex_);
    ++sites_retired_;
  }
  cache_.InvalidateSite(site);
}

bool EstimationService::ProbeNow(const std::string& site) {
  auto tracker = FindTracker(site);
  if (tracker == nullptr) return false;
  return tracker->ProbeOnce();
}

ProbeReading EstimationService::CurrentProbe(const std::string& site) const {
  auto tracker = FindTracker(site);
  return tracker == nullptr ? ProbeReading{} : tracker->Current();
}

bool EstimationService::IsSiteDegraded(const std::string& site) const {
  auto tracker = FindTracker(site);
  return tracker != nullptr && tracker->degraded();
}

CircuitBreaker::State EstimationService::SiteBreakerState(
    const std::string& site) const {
  auto tracker = FindTracker(site);
  return tracker == nullptr ? CircuitBreaker::State::kClosed
                            : tracker->breaker().state();
}

void EstimationService::SetModelStale(const std::string& site,
                                      core::QueryClassId class_id,
                                      bool stale) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  SetModelStaleLocked(site, class_id, stale);
}

void EstimationService::SetModelStaleLocked(const std::string& site,
                                            core::QueryClassId class_id,
                                            bool stale) {
  const auto key = std::make_pair(site, static_cast<int>(class_id));
  const StaleKeySnapshot current = stale_keys_.load();
  if ((current->count(key) > 0) == stale) return;
  // Only a registered model can be stale: without this guard a refresh
  // daemon racing UnregisterSite could re-flag a just-retired key and leak
  // it in the stale_models gauge forever.
  if (stale && catalog_.snapshot()->Find(site, class_id) == nullptr) return;
  auto next = std::make_shared<StaleKeySet>(*current);
  if (stale) {
    next->insert(key);
  } else {
    next->erase(key);
  }
  stale_keys_.Publish(StaleKeySnapshot(std::move(next)));
  // Cached responses embed the stale_model flag; a flip retires them.
  cache_.InvalidateSite(site);
}

bool EstimationService::IsModelStale(const std::string& site,
                                     core::QueryClassId class_id) const {
  return stale_keys_.load()->count(
             std::make_pair(site, static_cast<int>(class_id))) > 0;
}

EstimationService::RetiredTrackerTotals EstimationService::CaptureTrackerTotals(
    const ContentionTracker& tracker) {
  RetiredTrackerTotals totals;
  totals.probes = tracker.probes() + tracker.failures();
  totals.failures = tracker.failures();
  totals.discards = tracker.discarded();
  totals.timeouts = tracker.timeouts();
  totals.suppressed = tracker.suppressed();
  totals.breaker_opens = tracker.breaker().opens();
  return totals;
}

EstimationService::RetiredTrackerTotals EstimationService::TotalsDelta(
    const RetiredTrackerTotals& now, const RetiredTrackerTotals& then) {
  RetiredTrackerTotals delta;
  delta.probes = now.probes - then.probes;
  delta.failures = now.failures - then.failures;
  delta.discards = now.discards - then.discards;
  delta.timeouts = now.timeouts - then.timeouts;
  delta.suppressed = now.suppressed - then.suppressed;
  delta.breaker_opens = now.breaker_opens - then.breaker_opens;
  return delta;
}

void EstimationService::AddRetiredTotalsLocked(
    const RetiredTrackerTotals& totals) {
  retired_.probes += totals.probes;
  retired_.failures += totals.failures;
  retired_.discards += totals.discards;
  retired_.timeouts += totals.timeouts;
  retired_.suppressed += totals.suppressed;
  retired_.breaker_opens += totals.breaker_opens;
}

std::shared_ptr<ContentionTracker> EstimationService::FindTracker(
    const std::string& site) const {
  const TrackerMapSnapshot map = trackers_.load();
  const auto it = map->find(site);
  return it == map->end() ? nullptr : it->second;
}

void EstimationService::FlushCounts(const LocalCounts& counts) const {
  // Shard::Add is a plain store on the calling thread's own shard — the
  // whole flush performs no shared atomic RMW (unless the registry is
  // exhausted and this thread landed on the overflow shard).
  auto& shard = counters_.Local();
  if (counts.requests > 0) shard.Add(shard.requests, counts.requests);
  if (counts.probe_cache_hits > 0) {
    shard.Add(shard.probe_cache_hits, counts.probe_cache_hits);
  }
  if (counts.probe_cache_stale > 0) {
    shard.Add(shard.probe_cache_stale, counts.probe_cache_stale);
  }
  if (counts.probe_cache_misses > 0) {
    shard.Add(shard.probe_cache_misses, counts.probe_cache_misses);
  }
  if (counts.no_model > 0) shard.Add(shard.no_model, counts.no_model);
  if (counts.stale_model_served > 0) {
    shard.Add(shard.stale_model_served, counts.stale_model_served);
  }
  if (counts.invalid_requests > 0) {
    shard.Add(shard.invalid_requests, counts.invalid_requests);
  }
  if (counts.degraded_served > 0) {
    shard.Add(shard.degraded_served, counts.degraded_served);
  }
  if (counts.estimate_cache_hits > 0) {
    shard.Add(shard.estimate_cache_hits, counts.estimate_cache_hits);
  }
  if (counts.estimate_cache_misses > 0) {
    shard.Add(shard.estimate_cache_misses, counts.estimate_cache_misses);
  }
}

bool EstimationService::ResolveProbe(const EstimateRequest& request,
                                     const ProbeReading* cached_reading,
                                     EstimateResponse& response,
                                     LocalCounts& counts) const {
  if (request.probing_cost >= 0.0) {
    response.probing_cost = request.probing_cost;
    return true;
  }
  if (cached_reading == nullptr || !cached_reading->has_value) {
    ++counts.probe_cache_misses;
    response.status = EstimateStatus::kNoProbe;
    return false;
  }
  response.probing_cost = cached_reading->probing_cost;
  response.stale_probe = cached_reading->stale;
  if (cached_reading->degraded) {
    response.degraded = true;
    ++counts.degraded_served;
  }
  if (cached_reading->stale) {
    ++counts.probe_cache_stale;
  } else {
    ++counts.probe_cache_hits;
  }
  return true;
}

EstimateResponse EstimationService::EstimateWithSnapshot(
    const core::GlobalCatalog& catalog, const StaleKeySet& stale_keys,
    const EstimateRequest& request, const ProbeReading* cached_reading,
    LocalCounts& counts) const {
  EstimateResponse response;
  ++counts.requests;

  // Serving reads only the compiled per-state table — never the model's
  // derivation-side DesignLayout.
  const core::CompiledEquations* equations =
      catalog.FindCompiled(request.site, request.class_id);
  if (equations == nullptr) {
    ++counts.no_model;
    response.status = EstimateStatus::kNoModel;
    return response;
  }
  if (!stale_keys.empty() &&
      stale_keys.count(std::make_pair(
          request.site, static_cast<int>(request.class_id))) > 0) {
    response.stale_model = true;
    ++counts.stale_model_served;
  }
  if (!ResolveProbe(request, cached_reading, response, counts)) {
    return response;
  }

  // One width check per request, then state lookup + raw dot product.
  equations->CheckFeatureWidth(request.features);
  response.status = EstimateStatus::kOk;
  response.model_generation = equations->generation();
  response.state = equations->StateOf(response.probing_cost);
  response.estimate_seconds =
      equations->EvaluateInState(request.features.data(), response.state);
  return response;
}

void EstimationService::MaybeCacheResponse(
    const core::GlobalCatalog& catalog, const EstimateRequest& request,
    const EstimateResponse& response,
    const std::shared_ptr<ContentionTracker>& tracker,
    uint64_t state_version_before, const ProbeReading& reading) const {
  // Only responses priced from a *fresh, healthy* tracker reading are
  // cacheable: a stale, degraded, or explicit-probing-cost response is not a
  // function of the tracker's published state — and a degraded response must
  // stop being served the moment the half-open trial restores the site.
  if (!response.ok() || response.stale_probe || response.degraded) return;
  if (request.probing_cost >= 0.0) return;
  if (tracker == nullptr || !reading.has_value || reading.stale ||
      reading.degraded) {
    return;
  }
  const core::CompiledEquations* equations =
      catalog.FindCompiled(request.site, request.class_id);
  if (equations == nullptr || response.state < 0) return;

  EstimateCache::InsertContext context;
  RmwProbe::Count();  // tracker pin moving into the cache entry
  context.tracker = tracker;
  context.state_version = state_version_before;
  equations->StateInterval(response.state, &context.state_lo,
                           &context.state_hi);
  cache_.Insert(request.site, static_cast<int>(request.class_id),
                request.features, catalog.revision(), context, response);
}

EstimateResponse EstimationService::Estimate(
    const EstimateRequest& request) const {
  // Validate before anything shared is touched — a NaN feature vector must
  // never become an estimate-cache key or a served estimate.
  if (!RequestIsValid(request)) {
    auto& shard = counters_.Local();
    shard.Add(shard.invalid_requests);
    EstimateResponse response;
    response.status = EstimateStatus::kInvalidRequest;
    return response;
  }

  // Cache hit path first: no clocks, no snapshot, no histogram, no epoch
  // guard — one hash, the calling thread's own cache shard, a handful of
  // validation loads and one per-thread counter store. Zero shared atomic
  // RMWs end to end (the shared_rmw_per_request bench gate).
  const bool try_cache = cache_.enabled() && request.probing_cost < 0.0;
  if (try_cache) {
    // Arm the clock when the *next hit* completes a sample window. Misses
    // while armed waste one clock read (they pay the full miss path anyway)
    // but never advance the window — only hits do, so the weighted sample
    // stands for exactly kHitLatencySamplePeriod real hits.
    //
    // The window is per (thread, service): a function-scope thread_local
    // outlives any one service, so without the identity tag a window
    // part-filled by hits on a previous service would complete early here
    // and record a full-period weighted sample into *this* histogram backed
    // by fewer than kHitLatencySamplePeriod of this service's hits —
    // breaking count(estimate_latency) <= requests. Switching services on a
    // thread forfeits the partial window (undercounts, never overcounts).
    struct HitSampleWindow {
      uint64_t service_id = 0;
      uint64_t hits_since_sample = 0;
    };
    thread_local HitSampleWindow window;
    if (window.service_id != instance_id_) {
      window.service_id = instance_id_;
      window.hits_since_sample = 0;
    }
    uint64_t& hits_since_sample = window.hits_since_sample;
    const bool armed = hits_since_sample + 1 == kHitLatencySamplePeriod;
    std::chrono::steady_clock::time_point hit_started;
    if (armed) hit_started = std::chrono::steady_clock::now();
    EstimateResponse response;
    if (cache_.Lookup(request.site, static_cast<int>(request.class_id),
                      request.features, catalog_.version(), &response)) {
      auto& shard = counters_.Local();
      shard.Add(shard.estimate_cache_hits);
      if (armed) {
        estimate_latency_.RecordN(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - hit_started),
            kHitLatencySamplePeriod);
        hits_since_sample = 0;
      } else {
        ++hits_since_sample;
      }
      return response;
    }
  }

  const auto started = std::chrono::steady_clock::now();
  // Miss path: one epoch guard pins the catalog, tracker map and stale-key
  // set for the whole request — raw pointers, no refcount round-trips.
  EpochGuard guard;
  const core::GlobalCatalog* snapshot = catalog_.Read(guard);
  const StaleKeySet* stale_keys = stale_keys_.Read(guard);

  ProbeReading reading;
  const ProbeReading* cached = nullptr;
  std::shared_ptr<ContentionTracker> tracker;
  uint64_t state_version_before = 0;
  if (request.probing_cost < 0.0) {
    const TrackerMap* map = trackers_.Read(guard);
    if (const auto it = map->find(request.site); it != map->end()) {
      if (try_cache) {
        // Pin the tracker past the guard only when a cache insert may need
        // it (the entry holds the reference) — the refcount bump is a
        // shared RMW, paid on misses only.
        RmwProbe::Count();
        tracker = it->second;
      }
      // Version first, then the reading: if anything transitions in between,
      // the entry inserted below is born invalid rather than wrongly valid.
      state_version_before = it->second->state_version();
      reading = it->second->Current();
      cached = &reading;
    }
  }
  LocalCounts counts;
  EstimateResponse response =
      EstimateWithSnapshot(*snapshot, *stale_keys, request, cached, counts);
  if (try_cache) {
    ++counts.estimate_cache_misses;
    MaybeCacheResponse(*snapshot, request, response, tracker,
                       state_version_before, reading);
  }
  FlushCounts(counts);
  estimate_latency_.Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - started));
  return response;
}

std::vector<EstimateResponse> EstimationService::EstimateBatch(
    const std::vector<EstimateRequest>& requests) const {
  const auto started = std::chrono::steady_clock::now();
  {
    auto& shard = counters_.Local();
    shard.Add(shard.batches);
  }
  std::vector<EstimateResponse> responses(requests.size());
  if (requests.empty()) return responses;

  // One snapshot and one probe fetch per distinct site for the whole batch:
  // the per-request work is then pure arithmetic over immutable data. The
  // tracker and its pre-reading state version ride along so computed
  // responses can be inserted into the estimate cache.
  //
  // The caller's epoch guard pins the raw snapshots for the whole batch,
  // workers included: ParallelFor blocks this thread until every chunk
  // completes, so no retired catalog can be reclaimed while a worker still
  // reads it (the workers' accesses happen-before the caller's unpin).
  struct SiteProbe {
    ProbeReading reading;
    std::shared_ptr<ContentionTracker> tracker;
    uint64_t state_version_before = 0;
  };
  EpochGuard guard;
  const core::GlobalCatalog* snapshot = catalog_.Read(guard);
  const StaleKeySet* stale_keys = stale_keys_.Read(guard);
  const TrackerMap* tracker_map = trackers_.Read(guard);
  const bool use_cache = cache_.enabled();
  const uint64_t epoch = snapshot->revision();
  // Invalid items are rejected without being priced; the amortized-latency
  // record below must not count them (the soak's conservation checker
  // flags count(estimate_latency) > requests). Cold once-per-chunk RMW.
  std::atomic<uint64_t> invalid_total{0};
  std::map<std::string, SiteProbe> site_probes;
  for (const EstimateRequest& request : requests) {
    if (request.probing_cost >= 0.0) continue;
    if (site_probes.count(request.site) > 0) continue;
    SiteProbe probe;
    if (const auto it = tracker_map->find(request.site);
        it != tracker_map->end()) {
      RmwProbe::Count();  // tracker pin: once per distinct site per batch
      probe.tracker = it->second;
      probe.state_version_before = probe.tracker->state_version();
      probe.reading = probe.tracker->Current();
    }
    site_probes.emplace(request.site, std::move(probe));
  }

  pool_.ParallelFor(
      requests.size(), config_.batch_grain, [&](size_t begin, size_t end) {
        // Batches concentrate on few (site, class) pairs; memoize per pair
        // everything that is batch-invariant. With a cached probe the
        // contention state — and therefore the active compiled equation row
        // — is fixed for the whole batch: the scan pass resolves each
        // pair's state once and collects its requests into a group, and a
        // flush pass gathers every group's selected features into
        // contiguous rows and streams them through
        // CompiledEquations::EvaluateRowsInState — one pinned coefficient
        // row, unit-stride loads, bit-exact with the scalar path.
        // Counters are flushed once per chunk instead of once per request.
        struct MemoEntry {
          const std::string* site;
          core::QueryClassId class_id;
          const core::CompiledEquations* equations;  // serving form
          const ProbeReading* probe = nullptr;       // site's batch reading
          // Grouped evaluation, valid when `fast`: requests indexed by
          // `group` all evaluate state `state`'s row.
          bool fast = false;
          int state = -1;
          bool stale = false;
          bool degraded = false;     // site breaker not closed
          bool stale_model = false;  // key flagged by the refresh daemon
          double probing_cost = 0.0;
          std::vector<size_t> group;  // request indices awaiting the flush
        };
        std::vector<MemoEntry> memo;
        memo.reserve(8);
        LocalCounts counts;
        const auto cache_insert = [&](const EstimateRequest& request,
                                      const EstimateResponse& response) {
          if (!use_cache || request.probing_cost >= 0.0) return;
          const auto it = site_probes.find(request.site);
          if (it == site_probes.end()) return;
          MaybeCacheResponse(*snapshot, request, response, it->second.tracker,
                             it->second.state_version_before,
                             it->second.reading);
        };
        for (size_t i = begin; i < end; ++i) {
          const EstimateRequest& request = requests[i];
          if (!RequestIsValid(request)) {
            ++counts.invalid_requests;
            responses[i].status = EstimateStatus::kInvalidRequest;
            continue;
          }
          if (use_cache && request.probing_cost < 0.0) {
            if (cache_.Lookup(request.site,
                              static_cast<int>(request.class_id),
                              request.features, epoch, &responses[i])) {
              ++counts.estimate_cache_hits;
              continue;
            }
            ++counts.estimate_cache_misses;
          }
          size_t entry_index = memo.size();
          for (size_t m = 0; m < memo.size(); ++m) {
            if (memo[m].class_id == request.class_id &&
                *memo[m].site == request.site) {
              entry_index = m;
              break;
            }
          }
          if (entry_index == memo.size()) {
            MemoEntry fresh;
            fresh.site = &request.site;
            fresh.class_id = request.class_id;
            fresh.equations =
                snapshot->FindCompiled(request.site, request.class_id);
            if (fresh.equations != nullptr && !stale_keys->empty()) {
              fresh.stale_model =
                  stale_keys->count(std::make_pair(
                      request.site, static_cast<int>(request.class_id))) > 0;
            }
            const auto it = site_probes.find(request.site);
            if (it != site_probes.end()) fresh.probe = &it->second.reading;
            if (fresh.equations != nullptr && fresh.probe != nullptr &&
                fresh.probe->has_value) {
              fresh.fast = true;
              fresh.probing_cost = fresh.probe->probing_cost;
              fresh.stale = fresh.probe->stale;
              fresh.degraded = fresh.probe->degraded;
              fresh.state = fresh.equations->StateOf(fresh.probing_cost);
            }
            memo.push_back(std::move(fresh));
          }

          MemoEntry& entry = memo[entry_index];
          EstimateResponse& response = responses[i];
          ++counts.requests;
          if (entry.fast && request.probing_cost < 0.0) {
            // Width-check now (same abort point as the scalar path), defer
            // the arithmetic to the grouped flush below.
            entry.equations->CheckFeatureWidth(request.features);
            entry.group.push_back(i);
            continue;
          }
          if (entry.equations == nullptr) {
            ++counts.no_model;
            response.status = EstimateStatus::kNoModel;
            continue;
          }
          if (entry.stale_model) {
            response.stale_model = true;
            ++counts.stale_model_served;
          }
          const ProbeReading* cached =
              request.probing_cost < 0.0 ? entry.probe : nullptr;
          if (!ResolveProbe(request, cached, response, counts)) continue;
          entry.equations->CheckFeatureWidth(request.features);
          response.status = EstimateStatus::kOk;
          response.model_generation = entry.equations->generation();
          response.state = entry.equations->StateOf(response.probing_cost);
          response.estimate_seconds = entry.equations->EvaluateInState(
              request.features.data(), response.state);
          cache_insert(request, response);
        }

        // Grouped flush: per (site, class) group, gather the selected
        // features into packed rows and evaluate the whole group against
        // its one resolved state row. Scratch is reused across groups.
        std::vector<double> packed;
        std::vector<double> estimates;
        for (MemoEntry& entry : memo) {
          if (entry.group.empty()) continue;
          const size_t k = entry.equations->num_selected();
          packed.resize(entry.group.size() * k);
          estimates.resize(entry.group.size());
          for (size_t g = 0; g < entry.group.size(); ++g) {
            entry.equations->GatherSelected(
                requests[entry.group[g]].features.data(),
                packed.data() + g * k);
          }
          entry.equations->EvaluateRowsInState(
              entry.state, packed.data(), entry.group.size(),
              estimates.data());
          for (size_t g = 0; g < entry.group.size(); ++g) {
            const size_t i = entry.group[g];
            EstimateResponse& response = responses[i];
            response.status = EstimateStatus::kOk;
            response.model_generation = entry.equations->generation();
            response.probing_cost = entry.probing_cost;
            response.stale_probe = entry.stale;
            response.state = entry.state;
            response.estimate_seconds = estimates[g];
            if (entry.degraded) {
              response.degraded = true;
              ++counts.degraded_served;
            }
            if (entry.stale_model) {
              response.stale_model = true;
              ++counts.stale_model_served;
            }
            if (entry.stale) {
              ++counts.probe_cache_stale;
            } else {
              ++counts.probe_cache_hits;
            }
            cache_insert(requests[i], response);
          }
        }
        if (counts.invalid_requests > 0) {
          RmwProbe::Count();
          invalid_total.fetch_add(counts.invalid_requests,
                                  std::memory_order_relaxed);
        }
        FlushCounts(counts);
      });

  // Amortized per-item latency: the batch's wall time spread over the items
  // actually priced (invalid rejects recorded no work).
  const uint64_t priced =
      requests.size() - invalid_total.load(std::memory_order_relaxed);
  if (priced > 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - started);
    estimate_latency_.RecordN(elapsed / static_cast<int64_t>(priced), priced);
  }
  return responses;
}

PlacementResult EstimationService::ChoosePlacement(
    const std::vector<PlacementCandidate>& candidates) const {
  return ChoosePlacement(candidates, PlacementOptions{});
}

PlacementResult EstimationService::ChoosePlacement(
    const std::vector<PlacementCandidate>& candidates,
    const PlacementOptions& options) const {
  PlacementResult result;
  result.policy = options.ranking.policy;
  std::vector<EstimateRequest> requests;
  requests.reserve(candidates.size());
  for (const PlacementCandidate& c : candidates) requests.push_back(c.request);
  result.responses = EstimateBatch(requests);

  result.total_seconds.resize(candidates.size(),
                              std::numeric_limits<double>::infinity());
  result.scores.resize(candidates.size(),
                       std::numeric_limits<double>::infinity());
  result.distributions.resize(candidates.size());

  // One epoch guard pins the catalog for the distribution pass. The snapshot
  // may be newer than the one EstimateBatch priced under (a registration can
  // land in between); the width check below keeps a re-registered model from
  // reading past a shorter feature vector, and the distribution then simply
  // reflects the newer model — same freshness contract as two back-to-back
  // estimates.
  EpochGuard guard;
  const core::GlobalCatalog* snapshot = catalog_.Read(guard);

  double best_score = std::numeric_limits<double>::infinity();
  double best_point = std::numeric_limits<double>::infinity();
  int point_chosen = -1;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const EstimateResponse& response = result.responses[i];
    if (!response.ok()) continue;
    const double total =
        response.estimate_seconds + candidates[i].shipping_seconds;
    result.total_seconds[i] = total;

    core::CostDistribution distribution;
    const core::CompiledEquations* equations = snapshot->FindCompiled(
        candidates[i].request.site, candidates[i].request.class_id);
    if (equations != nullptr &&
        candidates[i].request.features.size() >= equations->min_features()) {
      distribution = equations->EvaluateDistribution(
          candidates[i].request.features, response.probing_cost,
          options.ranking.boundary_band_fraction);
    } else {
      // Model vanished between the batch and this pass: degenerate to the
      // point estimate (zero width) rather than dropping the candidate.
      distribution.mean = response.estimate_seconds;
      distribution.low = response.estimate_seconds;
      distribution.high = response.estimate_seconds;
    }
    distribution.stale = response.stale_probe || response.stale_model;
    distribution.degraded = response.degraded;
    result.distributions[i] = distribution;

    const double score =
        core::PlacementScore(options.ranking, distribution,
                             response.estimate_seconds,
                             candidates[i].shipping_seconds);
    result.scores[i] = score;
    // Strict < keeps the lowest-index winner on ties (deterministic).
    if (std::isfinite(score) && score < best_score) {
      best_score = score;
      result.chosen = static_cast<int>(i);
    }
    if (total < best_point) {
      best_point = total;
      point_chosen = static_cast<int>(i);
    }
  }

  auto& shard = counters_.Local();
  shard.Add(shard.placements);
  // The payoff counter: a distribution-aware policy actually overrode the
  // point-estimate argmin for this decision.
  if (options.ranking.policy != core::PlacementPolicy::kPointEstimate &&
      result.chosen >= 0 && result.chosen != point_chosen) {
    shard.Add(shard.placement_expected_cost_wins);
  }
  return result;
}

RuntimeStatsSnapshot EstimationService::Stats() const {
  RuntimeStatsSnapshot out;
  counters_.AggregateInto(out);
  // Hold retired_mutex_ across BOTH the live-tracker sweep and the retired
  // fold below: unpublication and fold happen under one hold of the same
  // mutex (the RetiredTrackerTotals atomicity contract), so each tracker's
  // history lands in exactly one of the two sums.
  std::lock_guard<std::mutex> retired_lock(retired_mutex_);
  // Probes are counted at the trackers (background and ProbeNow alike):
  // `probes` = attempts, of which `probe_failures` kept the old reading.
  const TrackerMapSnapshot map = trackers_.load();
  for (const auto& [site, tracker] : *map) {
    out.probes += tracker->probes() + tracker->failures();
    out.probe_failures += tracker->failures();
    out.probe_discards += tracker->discarded();
    out.probe_timeouts += tracker->timeouts();
    out.probes_suppressed += tracker->suppressed();
    out.breaker_opens += tracker->breaker().opens();
    if (tracker->degraded()) ++out.degraded_sites;
    // Gauge: sites whose published probe sits inside the soft-membership
    // band of a state boundary — where point estimates are least reliable
    // and distribution-aware placement earns its keep.
    double distance = 0.0;
    double boundary = 0.0;
    if (tracker->BoundaryDistance(&distance, &boundary) &&
        distance < config_.boundary_band_fraction * std::abs(boundary)) {
      ++out.near_boundary_sites;
    }
    // Gauge: the slowest current per-site cadence (every site probes at
    // least this often; adaptive trackers may be probing faster).
    out.probe_interval_ns =
        std::max(out.probe_interval_ns,
                 static_cast<int64_t>(tracker->current_probe_interval().count()));
  }
  // Replaced and retired trackers' terminal counts, folded at retirement:
  // without these, a re-registration or UnregisterSite would make the
  // monotone probe/breaker counters regress. Still under retired_lock from
  // above — one consistent view with the live sweep.
  out.probes += retired_.probes;
  out.probe_failures += retired_.failures;
  out.probe_discards += retired_.discards;
  out.probe_timeouts += retired_.timeouts;
  out.probes_suppressed += retired_.suppressed;
  out.breaker_opens += retired_.breaker_opens;
  out.sites_retired = sites_retired_;
  out.stale_models = stale_keys_.load()->size();
  out.estimate_cache_invalidations = cache_.invalidations();
  out.estimate_latency = estimate_latency_.Snap();
  out.probe_latency = probe_latency_.Snap();
  return out;
}

}  // namespace mscm::runtime
