// The online cost-estimation service: the paper's derived multi-states cost
// models (§4) served as a concurrent, low-latency runtime component of a
// global query optimizer.
//
// Many client threads ask "what would a query of class C with feature
// vector x cost at site S right now?". The service answers from
//   (1) an immutable-snapshot catalog of derived cost models (readers never
//       lock; model registration copy-on-writes a new snapshot) — estimates
//       evaluate each model's compiled per-state equation table
//       (core::CompiledEquations via GlobalCatalog::FindCompiled), never
//       the derivation-side DesignLayout — and
//   (2) per-site ContentionTrackers whose background probers keep a cached
//       (contention state, probing cost) per site, so no probing query runs
//       on the estimation path.
// Responses carry the contention state used, and a `stale_probe` flag when
// the cached probe has outlived its TTL (last-known-state fallback).
//
// EstimateBatch() prices many requests in one call — the federated-join
// planner prices every candidate placement of every component query at
// once — amortizing snapshot acquisition and per-site probe lookups over
// the batch and optionally fanning chunks out on a worker pool.

#ifndef MSCM_RUNTIME_ESTIMATION_SERVICE_H_
#define MSCM_RUNTIME_ESTIMATION_SERVICE_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "core/cost_distribution.h"
#include "runtime/clock.h"
#include "runtime/contention_tracker.h"
#include "runtime/epoch.h"
#include "runtime/estimate_cache.h"
#include "runtime/estimate_types.h"
#include "runtime/runtime_stats.h"
#include "runtime/snapshot_catalog.h"
#include "runtime/thread_pool.h"

namespace mscm::mdbs {
class MdbsAgent;
}  // namespace mscm::mdbs

namespace mscm::runtime {

struct EstimationServiceConfig {
  // Cached probes older than this are still served, flagged stale.
  std::chrono::nanoseconds probe_ttl = std::chrono::seconds(5);
  // Background probe period per site; zero = probe only via ProbeNow().
  std::chrono::nanoseconds probe_interval{0};
  // Worker threads for EstimateBatch fan-out: 0 = run batches on the
  // calling thread, < 0 = one per hardware thread.
  int worker_threads = 0;
  // Minimum batch items per fan-out chunk.
  size_t batch_grain = 64;
  // Per-site adaptive probing cadence bounds (see ContentionTrackerConfig);
  // both positive enables adaptation, starting from probe_interval.
  std::chrono::nanoseconds min_probe_interval{0};
  std::chrono::nanoseconds max_probe_interval{0};
  // Per-site probe deadline: a probe still running after this long is
  // abandoned and counted as a failure (see ContentionTrackerConfig). Zero
  // disables.
  std::chrono::nanoseconds probe_timeout{0};
  // Retry backoff base after a failed background probe (see
  // ContentionTrackerConfig::failure_retry). Zero disables.
  std::chrono::nanoseconds probe_failure_retry{0};
  // Per-site probe circuit breaker (failure_threshold 0 disables): after a
  // run of consecutive probe failures the site enters degraded — probing is
  // suppressed, estimates serve from the last known state with
  // degraded=true, and the refresh daemon holds its re-derivations.
  CircuitBreakerConfig breaker;
  // State-keyed response memo (see estimate_cache.h); capacity_per_thread 0
  // disables.
  EstimateCacheConfig cache;
  // Soft state-membership band for the near_boundary_sites gauge and the
  // default placement ranking: a site whose published probing cost sits
  // within band_fraction * |boundary| of a partition boundary is "near" it
  // (see core::CompiledEquations::EvaluateDistribution).
  double boundary_band_fraction = 0.1;
  Clock* clock = Clock::System();
};

// EstimateStatus / EstimateRequest / EstimateResponse live in
// runtime/estimate_types.h (shared with the estimate cache).

// A candidate placement: where could this component query run, and what
// would shipping its result home cost under current link conditions?
struct PlacementCandidate {
  EstimateRequest request;
  double shipping_seconds = 0.0;
};

// How ChoosePlacement ranks candidates (see core::PlacementRanking): the
// default is the legacy point-estimate argmin; kExpectedCost and
// kRiskAdjusted rank the served cost distributions instead, penalizing
// stale/degraded candidates by widening their intervals.
struct PlacementOptions {
  core::PlacementRanking ranking;
};

struct PlacementResult {
  int chosen = -1;  // index of cheapest candidate; -1 if none estimable
  core::PlacementPolicy policy = core::PlacementPolicy::kPointEstimate;
  std::vector<EstimateResponse> responses;
  std::vector<double> total_seconds;  // local estimate + shipping
  // Served cost distribution per candidate (stale/degraded stamped from the
  // response flags; zeroed where the candidate was not estimable).
  std::vector<core::CostDistribution> distributions;
  // Ranking score under the requested policy (infinity where not
  // estimable); `chosen` is its argmin.
  std::vector<double> scores;
};

class EstimationService {
 public:
  explicit EstimationService(EstimationServiceConfig config = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  // ---- Control plane (catalog + sites) ------------------------------------

  // Registers (or replaces) the model for (site, model.class_id()) by
  // publishing a new catalog snapshot. Also refreshes the site tracker's
  // state partition and clears any stale-model flag for the key. Safe to
  // call while estimates are being served; registrations serialize on the
  // control mutex, so a registration can never slip between RegisterSite's
  // tracker publication and its state-mapper wiring.
  void RegisterModel(const std::string& site, core::CostModel model);

  // Publishes a streaming-adaptation of the already-registered model for
  // (site, model.class_id()) — the fast tier of the two-tier adaptation
  // path. Unlike RegisterModel this preserves the catalog revision (all
  // rows except `changed_states` are bit-identical, so surviving estimate
  // cache entries for other states stay value-correct) and invalidates the
  // cache only at (site, state) grain. Fails (returns false, publishes
  // nothing) when no model is registered for the key or the registered
  // model's generation no longer equals `expected_generation` — the
  // lost-race guard against a concurrent full re-derivation or another
  // adaptation landing first.
  bool ApplyAdaptedModel(const std::string& site, core::CostModel model,
                         uint64_t expected_generation,
                         const std::vector<int>& changed_states);

  // As RegisterModel, but publishes only while the site is still live —
  // it has a registered tracker or at least one registered model. Returns
  // false (publishing nothing) otherwise. Asynchronous re-deriders (the
  // ModelRefreshDaemon) use this so a re-derivation that finishes after
  // UnregisterSite cannot resurrect the retired site's catalog entry.
  bool RegisterModelIfActive(const std::string& site, core::CostModel model);

  // Registers a site with an arbitrary probe (see ContentionTracker). If
  // the service config has a probe interval, the background prober starts
  // immediately. Re-registering a site replaces its tracker. The tracker's
  // state partition is wired from the site's most recently registered model
  // (deterministic, regardless of how many classes are registered).
  void RegisterSite(const std::string& site, ContentionTracker::ProbeFn probe);

  // Convenience: register a site probed through its MDBS agent.
  void RegisterSite(mdbs::MdbsAgent* agent);

  // Retires a site: stops and unpublishes its tracker, drops every
  // (site, class) model from the catalog (a revision-bumping snapshot swap,
  // so cached responses priced under the old catalog can never hit again),
  // clears the site's stale-model flags and eagerly evicts its cached
  // estimates. In-flight estimates drain safely — an epoch guard pins the
  // tracker map and catalog snapshot they read, and the tracker object
  // itself stays alive through the shared_ptrs those snapshots (and any
  // surviving cache entries) hold. The retired tracker's probe/breaker
  // counters are folded into the service totals so Stats() stays monotone
  // across churn. Idempotent; unknown sites are a no-op. See DESIGN §7
  // "Site lifecycle" for the full contract.
  void UnregisterSite(const std::string& site);

  // Graceful-shutdown hook: stops every site's background prober and blocks
  // until in-flight probes finish (or are abandoned at their deadline).
  // Estimates keep serving from the last cached readings. Idempotent; the
  // destructor calls it. Ordered teardown of a serving stack is
  //   server drain → refresh daemon stop → StopProbing() → service dtor
  // (the dtor's ThreadPool join is last — see net/server.h).
  void StopProbing();

  // Synchronous probe of one site; false if unknown site or probe failure.
  bool ProbeNow(const std::string& site);

  // Current cached reading for a site (default ProbeReading if unknown).
  ProbeReading CurrentProbe(const std::string& site) const;

  // Whether the site's probe circuit breaker is not closed (estimates for
  // the site are served degraded). False for unknown sites. Lock-free.
  bool IsSiteDegraded(const std::string& site) const;

  // The site's breaker state (kClosed for unknown sites). Lock-free.
  CircuitBreaker::State SiteBreakerState(const std::string& site) const;

  // Marks (or unmarks) the (site, class) model as stale: responses for the
  // key carry stale_model=true until a new model is registered or the flag
  // is cleared. Set by the ModelRefreshDaemon when drift trips; registering
  // a model for the key clears it automatically.
  void SetModelStale(const std::string& site, core::QueryClassId class_id,
                     bool stale);
  bool IsModelStale(const std::string& site,
                    core::QueryClassId class_id) const;

  // ---- Data plane (estimates) ---------------------------------------------

  EstimateResponse Estimate(const EstimateRequest& request) const;

  // Prices every request against one catalog snapshot, fetching each
  // distinct site's cached probe once and fanning chunks out on the worker
  // pool (when configured). responses[i] answers requests[i].
  std::vector<EstimateResponse> EstimateBatch(
      const std::vector<EstimateRequest>& requests) const;

  // Prices all candidate placements of a component query in one batch and
  // picks the cheapest total (local estimate + result shipping).
  PlacementResult ChoosePlacement(
      const std::vector<PlacementCandidate>& candidates) const;

  // As above, ranking under `options` (least-expected-cost / risk-adjusted
  // placement). With default options the chosen index matches the legacy
  // overload exactly; distributions and scores are served either way.
  PlacementResult ChoosePlacement(
      const std::vector<PlacementCandidate>& candidates,
      const PlacementOptions& options) const;

  // ---- Introspection ------------------------------------------------------

  RuntimeStatsSnapshot Stats() const;

  // The current catalog snapshot (Find() pointers valid while it is held).
  SnapshotCatalog::Snapshot CatalogSnapshot() const {
    return catalog_.snapshot();
  }

  size_t num_worker_threads() const { return pool_.num_threads(); }

  // The service's worker pool — shared with the ModelRefreshDaemon so
  // background re-derivations ride the same threads as batch fan-out.
  // With zero workers, submitted tasks run inline on the caller.
  ThreadPool& worker_pool() const { return pool_; }

 private:
  using TrackerMap =
      std::map<std::string, std::shared_ptr<ContentionTracker>>;
  using TrackerMapSnapshot = std::shared_ptr<const TrackerMap>;
  // (site, class id) keys currently flagged stale, published copy-on-write
  // like the tracker map so the estimate path reads it lock-free.
  using StaleKeySet = std::set<std::pair<std::string, int>>;
  using StaleKeySnapshot = std::shared_ptr<const StaleKeySet>;

  // Counter deltas accumulated on the stack during a request or chunk and
  // flushed to the sharded counters once — the hot path performs no atomic
  // RMW per estimate beyond the flush.
  struct LocalCounts {
    uint64_t requests = 0;
    uint64_t probe_cache_hits = 0;
    uint64_t probe_cache_stale = 0;
    uint64_t probe_cache_misses = 0;
    uint64_t no_model = 0;
    uint64_t stale_model_served = 0;
    uint64_t invalid_requests = 0;
    // Responses priced from a degraded site (breaker open or half-open).
    uint64_t degraded_served = 0;
    // Estimate-cache hits bump only this (not requests): the hit path pays
    // exactly one per-thread counter store — no shared atomic RMW.
    // Aggregation folds hits back into requests.
    uint64_t estimate_cache_hits = 0;
    uint64_t estimate_cache_misses = 0;
  };

  void FlushCounts(const LocalCounts& counts) const;

  // The site's tracker, or nullptr (lock-free snapshot read).
  std::shared_ptr<ContentionTracker> FindTracker(const std::string& site) const;

  // Resolves the probe for a request: explicit value, or the site's cached
  // reading (counting hit/stale/miss into `counts`).
  bool ResolveProbe(const EstimateRequest& request,
                    const ProbeReading* cached_reading,
                    EstimateResponse& response, LocalCounts& counts) const;

  EstimateResponse EstimateWithSnapshot(const core::GlobalCatalog& catalog,
                                        const StaleKeySet& stale_keys,
                                        const EstimateRequest& request,
                                        const ProbeReading* cached_reading,
                                        LocalCounts& counts) const;

  // Caches `response` keyed under `catalog`'s revision if it is cacheable:
  // served OK from a fresh tracker reading. `state_version_before` is the
  // tracker's version loaded before `reading` was taken.
  void MaybeCacheResponse(const core::GlobalCatalog& catalog,
                          const EstimateRequest& request,
                          const EstimateResponse& response,
                          const std::shared_ptr<ContentionTracker>& tracker,
                          uint64_t state_version_before,
                          const ProbeReading& reading) const;

  // Flips the stale flag for a key; caller must hold control_mutex_.
  void SetModelStaleLocked(const std::string& site,
                           core::QueryClassId class_id, bool stale);

  // RegisterModel's body; caller must hold control_mutex_. `states` and
  // `class_id` are captured from `model` before it moves.
  void RegisterModelLocked(const std::string& site, core::CostModel model,
                           const core::ContentionStates& states,
                           core::QueryClassId class_id);

  const EstimationServiceConfig config_;
  SnapshotCatalog catalog_;
  // Declared before the trackers so entries (which pin tracker references)
  // are retired after the tracker map; the destructor stops every live
  // prober first regardless.
  mutable EstimateCache cache_;

  // Serializes the control plane: model registration, site registration and
  // stale-flag flips. Estimates never take it — they read the published
  // snapshots. Holding one mutex across a whole RegisterSite/RegisterModel
  // is what closes the tracker-publication vs. mapper-wiring race.
  mutable std::mutex control_mutex_;
  // Epoch-published: the estimate hot path reads these raw under an
  // EpochGuard (zero shared RMWs); the control plane and cold callers use
  // the shared_ptr load.
  EpochPublished<TrackerMap> trackers_;
  EpochPublished<StaleKeySet> stale_keys_;
  // Last registered model class per site (control_mutex_): the partition
  // RegisterSite wires into a new tracker.
  std::map<std::string, core::QueryClassId> newest_class_;

  // Terminal counter totals of trackers that were replaced (RegisterSite)
  // or retired (UnregisterSite). Stats() adds these to the live trackers'
  // counts so probe/breaker counters never regress across site churn.
  // Guarded by retired_mutex_ (its own mutex so Stats() never contends
  // with — or deadlocks against — control-plane calls that join probers
  // while holding control_mutex_).
  //
  // Atomicity contract: a tracker's unpublication from trackers_ and the
  // fold of its counts into retired_ happen under ONE retired_mutex_ hold,
  // and Stats() reads the map and retired_ under that same mutex — so at
  // every observable instant a tracker's history is counted in exactly one
  // of the two. (Unpublish-then-fold made the tracker's whole history
  // vanish from a Stats() racing the gap; fold-then-unpublish would double
  // count it. Both read as counter regressions to a monotonicity
  // watchdog.) Counts a still-draining probe adds between the fold and
  // Stop() are folded afterwards as a delta.
  struct RetiredTrackerTotals {
    uint64_t probes = 0;
    uint64_t failures = 0;
    uint64_t discards = 0;
    uint64_t timeouts = 0;
    uint64_t suppressed = 0;
    uint64_t breaker_opens = 0;
  };
  // A tracker's terminal counter values, in retired-totals form (probes
  // includes failures, matching the Stats() aggregation).
  static RetiredTrackerTotals CaptureTrackerTotals(
      const ContentionTracker& tracker);
  // Field-wise now - then; `then` must be an earlier capture of the same
  // tracker.
  static RetiredTrackerTotals TotalsDelta(const RetiredTrackerTotals& now,
                                          const RetiredTrackerTotals& then);
  // Caller must hold retired_mutex_.
  void AddRetiredTotalsLocked(const RetiredTrackerTotals& totals);

  mutable std::mutex retired_mutex_;
  RetiredTrackerTotals retired_;
  uint64_t sites_retired_ = 0;

  // Process-unique identity for this service instance. The hit-latency
  // sampler keeps its window state in a function-scope thread_local; tagging
  // that state with this id (never the `this` pointer — allocators reuse
  // addresses) keeps a window partially filled against one service from
  // completing early against another, which would record a full-period
  // weighted sample backed by fewer real hits and push the histogram count
  // past the request count.
  const uint64_t instance_id_;

  mutable ThreadPool pool_;
  mutable RuntimeCounters counters_;
  mutable LatencyHistogram estimate_latency_;
  mutable LatencyHistogram probe_latency_;
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_ESTIMATION_SERVICE_H_
