// Runtime observability for the online estimation service: truly per-thread
// counters and latency histograms (one stripe per ThreadRegistry slot, so a
// recording thread touches only cache lines it owns — zero shared atomic
// RMWs) with lazy aggregation at snapshot time. Everything here is safe to
// update from many threads and to snapshot concurrently; snapshots are
// monotone but not atomic across counters.

#ifndef MSCM_RUNTIME_RUNTIME_STATS_H_
#define MSCM_RUNTIME_RUNTIME_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/thread_registry.h"

namespace mscm::runtime {

// Histogram over latencies with power-of-two nanosecond buckets: bucket i
// holds samples in [2^i, 2^(i+1)) ns, bucket 0 also absorbs sub-ns samples.
// 40 buckets cover up to ~18 minutes.
//
// Recording writes the calling thread's own lazily-allocated stripe with
// plain load+store increments (single-writer per slot; a thread that
// outlives its slot hands the cumulative stripe to the slot's next owner,
// so totals are conserved across thread churn). Snapshots sum the stripes;
// the sample count is derived from the summed buckets in the same pass, so
// a reader can never observe sum(buckets) != count — the torn-read skew the
// old separately-loaded count_ allowed.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 40;

  struct Snapshot {
    uint64_t count = 0;
    double mean_seconds = 0.0;
    double p50_seconds = 0.0;
    double p90_seconds = 0.0;
    double p99_seconds = 0.0;
    double max_bucket_seconds = 0.0;  // upper edge of highest non-empty bucket

    std::string ToString() const;
  };

  LatencyHistogram() = default;
  ~LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(std::chrono::nanoseconds latency);

  // Records `n` samples of the same latency with one pass over the buckets
  // (batch paths record the amortized per-item latency this way).
  void RecordN(std::chrono::nanoseconds latency, uint64_t n);

  // Percentile via cumulative bucket counts; returns the geometric midpoint
  // of the bucket containing the requested rank (0 when empty). p >= 1.0 is
  // pinned to the highest non-empty bucket.
  double PercentileSeconds(double p) const;

  Snapshot Snap() const;

  // Zeroes every stripe. Not linearizable against concurrent recorders;
  // call only while recording is quiescent (tests, bench warmup).
  void Reset();

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> buckets[kNumBuckets] = {};
    std::atomic<uint64_t> total_ns{0};
  };

  // Sums every stripe into `buckets` / `total_ns`, returns the sample count
  // (= sum of buckets, by construction).
  uint64_t Aggregate(uint64_t buckets[kNumBuckets], uint64_t* total_ns) const;

  static double RankSeconds(const uint64_t buckets[kNumBuckets],
                            uint64_t count, double p);

  // Owner-created (release store), readers acquire; never freed before the
  // histogram itself.
  std::atomic<Stripe*> stripes_[ThreadRegistry::kMaxSlots] = {};
  // Shared fallback for threads beyond kMaxSlots (real RMWs, RmwProbe-counted).
  Stripe overflow_;
};

// One snapshot of every service counter, plus the latency histograms.
struct RuntimeStatsSnapshot {
  uint64_t requests = 0;           // estimates served (single + batched items)
  uint64_t batches = 0;            // EstimateBatch calls
  uint64_t probe_cache_hits = 0;   // served from a fresh cached probe
  uint64_t probe_cache_stale = 0;  // served from a cached probe past its TTL
  uint64_t probe_cache_misses = 0; // no cached probe available at all
  uint64_t no_model = 0;           // (site, class) had no registered model
  uint64_t probes = 0;             // probing queries run by trackers
  uint64_t probe_failures = 0;     // probes that errored (kept last state)
  uint64_t probe_discards = 0;     // probes outrun by a newer one (not published)
  uint64_t probe_timeouts = 0;     // probes abandoned past their deadline
  uint64_t probes_suppressed = 0;  // probe attempts rejected by an open breaker
  uint64_t breaker_opens = 0;      // circuit-breaker transitions into open
  uint64_t degraded_sites = 0;     // gauge: sites whose breaker is not closed
  uint64_t degraded_served = 0;    // estimates priced from a degraded site
  uint64_t invalid_requests = 0;   // requests rejected at the service boundary
  uint64_t catalog_swaps = 0;      // snapshot publications (model registers)
  // Streaming-RLS adaptation swaps published (revision-preserving row
  // swaps; full re-derivations count under catalog_swaps instead).
  uint64_t adaptations_applied = 0;
  uint64_t stale_model_served = 0; // estimates served from a drift-flagged model
  uint64_t stale_models = 0;       // gauge: (site, class) keys currently stale
  uint64_t estimate_cache_hits = 0;    // estimates served from the response memo
  uint64_t estimate_cache_misses = 0;  // memo consulted but priced the long way
  uint64_t estimate_cache_invalidations = 0;  // entries evicted (state/catalog)
  uint64_t placements = 0;         // ChoosePlacement decisions served
  // Placements where a distribution-aware policy (expected-cost /
  // risk-adjusted) picked a different site than the point-estimate argmin
  // would have — the visible payoff of serving distributions.
  uint64_t placement_expected_cost_wins = 0;
  uint64_t near_boundary_sites = 0;  // gauge: probes inside a boundary band
  // Sites retired via UnregisterSite. Probe/breaker counters from retired
  // (and replaced) trackers are folded into the totals above at retirement,
  // so every counter stays monotone across site churn.
  uint64_t sites_retired = 0;
  int64_t probe_interval_ns = 0;   // gauge: slowest current per-site cadence

  LatencyHistogram::Snapshot estimate_latency;
  LatencyHistogram::Snapshot probe_latency;

  std::string ToString() const;
};

// Wire-stable enumeration of the snapshot's scalar fields, so serializers
// (net/stats_codec) and dashboards can address every counter by name without
// falling out of sync with the struct. The names are a wire contract:
// append-only — never rename or repurpose one (see DESIGN.md §8).
struct StatsCounterField {
  const char* name;
  uint64_t RuntimeStatsSnapshot::*field;
};
struct StatsGaugeField {
  const char* name;
  int64_t RuntimeStatsSnapshot::*field;
};
struct StatsHistogramField {
  const char* name;  // key prefix ("estimate_latency", ...)
  LatencyHistogram::Snapshot RuntimeStatsSnapshot::*field;
};

const std::vector<StatsCounterField>& StatsCounterFields();
const std::vector<StatsGaugeField>& StatsGaugeFields();
const std::vector<StatsHistogramField>& StatsHistogramFields();

// The hot-path counters, one shard per live thread (ThreadRegistry slot) so
// an estimate thread only ever writes cache lines it owns. Shard fields are
// std::atomic so aggregators may read them concurrently, but the owning
// thread bumps them with Add() — a plain load+store, not an atomic RMW
// (single-writer). Threads beyond the registry capacity share one overflow
// shard whose Add() degrades to fetch_add (counted by RmwProbe).
//
// Shards are cumulative and survive their owner: a thread that exits leaves
// its totals in place for the slot's next owner to keep extending, so
// AggregateInto() conserves every increment across thread churn.
class RuntimeCounters {
 public:
  struct alignas(64) Shard {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> probe_cache_hits{0};
    std::atomic<uint64_t> probe_cache_stale{0};
    std::atomic<uint64_t> probe_cache_misses{0};
    std::atomic<uint64_t> no_model{0};
    std::atomic<uint64_t> probes{0};
    std::atomic<uint64_t> probe_failures{0};
    std::atomic<uint64_t> catalog_swaps{0};
    std::atomic<uint64_t> adaptations_applied{0};
    std::atomic<uint64_t> stale_model_served{0};
    std::atomic<uint64_t> degraded_served{0};
    std::atomic<uint64_t> invalid_requests{0};
    // A cache hit bumps only estimate_cache_hits (one per-thread store on
    // the hit path); aggregation folds hits back into `requests`.
    std::atomic<uint64_t> estimate_cache_hits{0};
    std::atomic<uint64_t> estimate_cache_misses{0};
    std::atomic<uint64_t> placements{0};
    std::atomic<uint64_t> placement_expected_cost_wins{0};

    // Increment for the shard's owner: plain load+store on a per-thread
    // shard, fetch_add on the shared overflow shard.
    void Add(std::atomic<uint64_t>& field, uint64_t n = 1);

    // True only for the overflow shard (concurrent writers).
    bool shared_writers = false;
  };

  RuntimeCounters();
  ~RuntimeCounters();

  RuntimeCounters(const RuntimeCounters&) = delete;
  RuntimeCounters& operator=(const RuntimeCounters&) = delete;

  // The calling thread's shard: its registry slot's shard (single writer),
  // or the shared overflow shard when the registry is exhausted.
  Shard& Local();

  // Sums all shards into `out` (histograms untouched). `requests` reported
  // includes estimate-cache hits (see Shard::estimate_cache_hits).
  void AggregateInto(RuntimeStatsSnapshot& out) const;

 private:
  std::atomic<Shard*> slots_[ThreadRegistry::kMaxSlots] = {};
  Shard overflow_;
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_RUNTIME_STATS_H_
