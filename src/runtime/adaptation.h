// The fast tier of the two-tier model adaptation path (DESIGN.md §7).
//
// The ModelRefreshDaemon closes the paper's maintenance loop the expensive
// way: when drift trips, it re-samples the site and re-derives the whole
// model (variable selection, state partition, OLS fit). That is the right
// tool when the *structure* moved — but most drift is parametric: the
// contention states still partition the probing cost correctly, the selected
// variables are still the right ones, and only the coefficient values have
// walked. For that case this controller maintains one recursive-least-squares
// estimator per (site, class, state) over the live feedback stream and
// periodically publishes the updated coefficient rows as a revision-
// preserving row swap (EstimationService::ApplyAdaptedModel) — milliseconds
// and zero probing queries, versus the daemon's full re-sample.
//
// Record path contract (the PR 7 shared-nothing rule): Record() is called
// from serving threads and performs ZERO shared atomic RMWs. Each thread
// (ThreadRegistry slot) owns a bounded SPSC ring — the producer touches only
// its own head cursor (plain load + release store) and per-ring counters it
// alone writes; the drain thread is the single consumer of every ring.
// A full ring drops the report (feedback is advisory; dropping is always
// safe) and threads beyond the registry capacity fall back to a mutex-
// guarded overflow queue (real RMWs, RmwProbe-counted).
//
// Drain path: DrainOnce() — called manually (tests) or by the optional
// background thread — pops every ring, prices each report through the
// serving path (yielding the current estimate, contention state and model
// generation), folds the observation into the state's RLS estimator, and
// publishes an adapted model once a state has accumulated enough updates.
// Lineage is tracked by generation: any externally published model (a full
// re-derivation resets generation to 0) orphans the accumulators, which
// re-seed from the new model's rows.
//
// Escalation — the slow tier: when the fast tier is not working, the
// controller hands the key to the refresh daemon (RequestRefresh) instead of
// continuing to chase it. Three triggers:
//   * covariance blow-up: an RLS estimator latched blown_up() — the update
//     stream stopped being numerically trustworthy;
//   * error stall: the EWMA of the relative estimation error has not
//     improved for `stall_window` reports while sitting above
//     `stall_error_threshold` — coefficient updates alone cannot fix this
//     model (wrong variables or wrong partition);
//   * state-distribution drift: the recent contention-state histogram moved
//     more than `drift_threshold` (L1) from the baseline captured at seed
//     time — the environment left the region the partition was derived for.

#ifndef MSCM_RUNTIME_ADAPTATION_H_
#define MSCM_RUNTIME_ADAPTATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/query_class.h"
#include "runtime/estimate_types.h"
#include "runtime/model_refresh.h"
#include "runtime/thread_registry.h"
#include "stats/rls.h"

namespace mscm::runtime {

class EstimationService;

struct AdaptationConfig {
  // Per-thread feedback ring capacity (rounded up to a power of two). A full
  // ring drops new reports rather than blocking the serving thread.
  size_t buffer_capacity = 1024;
  // RLS updates a state must accumulate before its row is published. Keeps
  // a single noisy observation from reaching the serving table.
  size_t min_updates_to_publish = 8;
  // Forgetting factor / prior / numerical guards for the per-state
  // estimators (see stats/rls.h). The default forgetting of 0.995 weights
  // an observation half as much after ~138 updates.
  stats::RlsConfig rls;
  // EWMA smoothing for the relative estimation error signal.
  double ewma_alpha = 0.2;
  // Escalate when the error EWMA has not improved for `stall_window`
  // reports while above `stall_error_threshold`. An improvement is a drop
  // of at least `stall_improvement` (relative) below the best EWMA seen.
  double stall_error_threshold = 0.75;
  size_t stall_window = 64;
  double stall_improvement = 0.05;
  // Escalate when the L1 distance between the recent and baseline state
  // distributions exceeds this. The baseline is the first
  // `min_samples_for_drift` states observed after (re)seeding.
  double drift_threshold = 0.6;
  size_t drift_window = 64;
  size_t min_samples_for_drift = 32;
  // Generation-aware feedback weighting. A report is stamped with the
  // model_generation its estimate was priced under; `lag` is how many
  // generations the serving lineage has advanced since. Stragglers from
  // superseded lineages carry information about an older model's errors —
  // folding them in at full weight right after a republish biases the RLS
  // tier toward coefficients it just corrected.
  //
  // Reports with lag > generation_discard_lag are discarded outright
  // (0 = discard anything from a superseded lineage; raise it to tolerate
  // slower feedback loops). Surviving lagged reports fold in with RLS
  // weight generation_downweight^lag (1.0 = no down-weighting).
  uint64_t generation_discard_lag = 4;
  double generation_downweight = 0.5;
  // Background drain cadence; used only when `start_thread` is true.
  std::chrono::nanoseconds drain_interval = std::chrono::milliseconds(20);
  bool start_thread = false;
};

// Monotonic counters over the controller's lifetime.
struct AdaptationStats {
  uint64_t accepted = 0;          // reports buffered for the drain
  uint64_t dropped = 0;           // reports lost to a full ring
  uint64_t rejected = 0;          // reports failing validation (fail-closed)
  uint64_t drained = 0;           // reports consumed by DrainOnce
  uint64_t ignored = 0;           // drained but unpriceable (no model/probe)
  uint64_t updates_applied = 0;   // RLS updates folded into an estimator
  uint64_t updates_rejected = 0;  // RLS guard rejections (near-singular gain)
  uint64_t adaptations_published = 0;  // row swaps through ApplyAdaptedModel
  uint64_t escalations = 0;       // keys handed to the refresh daemon
  uint64_t lost_races = 0;        // publishes beaten by an external swap
  uint64_t lineage_resets = 0;    // accumulators orphaned by a new lineage
  // Generation-aware weighting (see AdaptationConfig): stragglers from
  // superseded lineages discarded outright / folded in at reduced weight.
  uint64_t stale_gen_discarded = 0;
  uint64_t stale_gen_downweighted = 0;
  // High-water generation lag observed across all keys (gauge-like but
  // monotone): how far behind the serving lineage feedback has arrived.
  uint64_t max_generation_lag = 0;

  std::string ToString() const;
};

// Point-in-time view of one (site, class) key (introspection / tests).
struct AdaptationKeyStatus {
  bool seeded = false;
  uint64_t generation = 0;       // lineage the accumulators track
  double ewma_rel_error = 0.0;
  size_t samples = 0;            // reports folded since (re)seed
  uint64_t rls_updates = 0;      // across all state estimators, this lineage
  // Generation lag of the key's most recently drained report (0 = feedback
  // is keeping up with the serving lineage).
  uint64_t generation_lag = 0;
};

class AdaptationController {
 public:
  // Hard caps that keep ring samples fixed-size (no allocation, no shared
  // RMW on the record path). Reports exceeding either are rejected.
  static constexpr size_t kMaxFeatures = 16;
  static constexpr size_t kMaxSiteLength = 47;

  // `service` must outlive the controller. `daemon` may be null (escalations
  // are then counted but go nowhere) and must otherwise outlive it too.
  AdaptationController(EstimationService* service, ModelRefreshDaemon* daemon,
                       AdaptationConfig config = {});
  ~AdaptationController();

  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;

  // Buffers one feedback report for the next drain. Safe from any thread;
  // zero shared atomic RMWs for threads holding a registry slot. Returns
  // false when the report was rejected (invalid) or dropped (ring full).
  bool Record(const FeedbackReport& report);

  // Drains every ring and folds the reports into the estimators, publishing
  // and escalating as warranted. Single consumer (internally serialized);
  // the test entry point when no background thread runs. Returns the number
  // of reports consumed.
  size_t DrainOnce();

  // Starts / stops the background drain thread. Start is idempotent; the
  // destructor stops. Stop drains once more so buffered reports are not
  // silently discarded.
  void Start();
  void Stop();

  // Drops every accumulator group for `site` (all query classes) — the
  // adaptation half of site retirement (see EstimationService::UnregisterSite
  // and DESIGN §7). Ring samples for the site already buffered are still
  // drained afterwards but price as kNoModel and are counted `ignored`
  // without re-creating a group. Unknown sites are a no-op.
  void DetachSite(const std::string& site);

  // Number of live accumulator groups (leak detection in tests; a detached
  // or never-seeded site must not pin one).
  size_t NumGroups() const;

  AdaptationStats Stats() const;
  AdaptationKeyStatus Status(const std::string& site,
                             core::QueryClassId class_id) const;

 private:
  // Fixed-size ring sample: everything Record captured, nothing heap-owned.
  struct Sample {
    char site[kMaxSiteLength + 1];
    uint8_t site_len = 0;
    core::QueryClassId class_id = core::QueryClassId::kUnarySeqScan;
    uint8_t num_features = 0;
    double features[kMaxFeatures];
    double actual_cost = 0.0;
    double probing_cost = -1.0;
    uint64_t model_generation = 0;
  };

  // One thread's SPSC ring. Producer: the slot's owning thread (head,
  // accepted, dropped, rejected — single-writer plain load+store).
  // Consumer: the drain (tail).
  struct alignas(64) Ring {
    explicit Ring(size_t capacity) : buffer(capacity) {}
    std::atomic<uint64_t> head{0};
    std::atomic<uint64_t> tail{0};
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> rejected{0};
    std::vector<Sample> buffer;
  };

  // Per-(site, class, state) estimator, seeded from the serving row.
  struct StateAccumulator {
    std::unique_ptr<stats::RlsEstimator> rls;
    uint64_t base_updates = 0;  // updates persisted in the seed row
    uint64_t new_updates = 0;   // updates since the last publish
  };

  // Per-(site, class) lineage: accumulators plus the escalation signals.
  struct Group {
    bool seeded = false;
    uint64_t generation = 0;
    int num_states = 0;
    std::map<int, StateAccumulator> states;
    bool blown = false;

    // Signals (reset on every reseed).
    size_t samples = 0;
    double ewma_rel_error = 0.0;
    bool ewma_primed = false;
    double best_ewma = 0.0;
    size_t since_improvement = 0;
    std::vector<uint64_t> baseline_hist;
    uint64_t baseline_total = 0;
    std::deque<int> recent_states;
    std::vector<uint64_t> recent_hist;
    // Generation lag of the most recently folded report (see
    // AdaptationConfig::generation_discard_lag).
    uint64_t last_generation_lag = 0;
  };

  static bool ValidReport(const FeedbackReport& report);
  static void FillSample(const FeedbackReport& report, Sample& sample);

  Ring* LocalRing();

  // Drain-side helpers; all run under drain_mutex_.
  void ProcessSample(const Sample& sample);
  bool ReseedGroup(Group& group, const std::string& site,
                   core::QueryClassId class_id);
  void UpdateSignals(Group& group, double estimated, double observed,
                     int state);
  bool ShouldEscalate(const Group& group) const;
  void Escalate(const std::pair<std::string, int>& key, Group& group);
  void MaybePublish(const std::pair<std::string, int>& key, Group& group);
  static double DriftDistance(const Group& group);

  EstimationService* const service_;
  ModelRefreshDaemon* const daemon_;  // may be null
  const AdaptationConfig config_;
  size_t ring_capacity_ = 0;  // power of two
  uint64_t ring_mask_ = 0;

  // Owner-created (release store), freed only by the destructor.
  std::atomic<Ring*> rings_[ThreadRegistry::kMaxSlots] = {};

  // Overflow path for threads without a registry slot (mutex + RMWs).
  mutable std::mutex overflow_mutex_;
  std::deque<Sample> overflow_;
  std::atomic<uint64_t> overflow_accepted_{0};
  std::atomic<uint64_t> overflow_dropped_{0};
  std::atomic<uint64_t> overflow_rejected_{0};

  // Serializes drains; guards groups_ and the drain-side counters.
  mutable std::mutex drain_mutex_;
  std::map<std::pair<std::string, int>, Group> groups_;

  std::atomic<uint64_t> drained_{0};
  std::atomic<uint64_t> ignored_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> updates_rejected_{0};
  std::atomic<uint64_t> adaptations_published_{0};
  std::atomic<uint64_t> escalations_{0};
  std::atomic<uint64_t> lost_races_{0};
  std::atomic<uint64_t> lineage_resets_{0};
  std::atomic<uint64_t> stale_gen_discarded_{0};
  std::atomic<uint64_t> stale_gen_downweighted_{0};
  std::atomic<uint64_t> max_generation_lag_{0};

  std::mutex thread_mutex_;
  std::condition_variable thread_cv_;
  bool stop_ = false;
  std::thread drain_thread_;
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_ADAPTATION_H_
