#include "runtime/model_refresh.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace mscm::runtime {

const char* ToString(RefreshState s) {
  switch (s) {
    case RefreshState::kFresh:
      return "fresh";
    case RefreshState::kDrifting:
      return "drifting";
    case RefreshState::kRefreshing:
      return "refreshing";
    case RefreshState::kBackedOff:
      return "backed-off";
  }
  return "?";
}

std::string ModelRefreshStats::ToString() const {
  return Format(
      "reports=%llu ignored=%llu trips{error=%llu drift=%llu} "
      "refreshes{scheduled=%llu ok=%llu failed=%llu suspended=%llu "
      "threw=%llu abandoned=%llu}",
      static_cast<unsigned long long>(reports),
      static_cast<unsigned long long>(ignored_reports),
      static_cast<unsigned long long>(error_trips),
      static_cast<unsigned long long>(drift_trips),
      static_cast<unsigned long long>(refreshes_scheduled),
      static_cast<unsigned long long>(refreshes_succeeded),
      static_cast<unsigned long long>(refresh_failures),
      static_cast<unsigned long long>(refreshes_suspended),
      static_cast<unsigned long long>(refresh_exceptions),
      static_cast<unsigned long long>(refreshes_abandoned));
}

ModelRefreshDaemon::ModelRefreshDaemon(EstimationService* service,
                                       ModelRefreshConfig config)
    : service_(service),
      config_(config),
      keys_(std::make_shared<const KeyMap>()) {}

ModelRefreshDaemon::~ModelRefreshDaemon() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ModelRefreshDaemon::Watch(const std::string& site,
                               core::QueryClassId class_id,
                               core::ObservationSource* source) {
  auto entry = std::make_shared<KeyEntry>();
  entry->site = site;
  entry->class_id = class_id;
  entry->source = source;

  std::lock_guard<std::mutex> lock(keys_mutex_);
  auto next = std::make_shared<KeyMap>(*keys_.load());
  (*next)[{site, static_cast<int>(class_id)}] = std::move(entry);
  keys_.store(std::move(next));
}

void ModelRefreshDaemon::Unwatch(const std::string& site,
                                 core::QueryClassId class_id) {
  std::shared_ptr<KeyEntry> removed;
  {
    std::lock_guard<std::mutex> lock(keys_mutex_);
    auto next = std::make_shared<KeyMap>(*keys_.load());
    const auto it = next->find({site, static_cast<int>(class_id)});
    if (it == next->end()) return;
    removed = it->second;
    next->erase(it);
    keys_.store(std::move(next));
  }
  {
    std::lock_guard<std::mutex> lock(removed->mutex);
    removed->retired = true;
  }
  // A tripped-but-unpublished key would otherwise carry its stale flag
  // forever: nothing will refresh it now. An in-flight refresh abandoning
  // later re-clears as well (it may have re-set the flag while racing us).
  service_->SetModelStale(site, class_id, false);
}

void ModelRefreshDaemon::UnwatchSite(const std::string& site) {
  std::vector<std::shared_ptr<KeyEntry>> removed;
  {
    std::lock_guard<std::mutex> lock(keys_mutex_);
    auto next = std::make_shared<KeyMap>(*keys_.load());
    for (auto it = next->begin(); it != next->end();) {
      if (it->first.first == site) {
        removed.push_back(it->second);
        it = next->erase(it);
      } else {
        ++it;
      }
    }
    if (removed.empty()) return;
    keys_.store(std::move(next));
  }
  for (const auto& entry : removed) {
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      entry->retired = true;
    }
    service_->SetModelStale(entry->site, entry->class_id, false);
  }
}

std::shared_ptr<ModelRefreshDaemon::KeyEntry> ModelRefreshDaemon::FindEntry(
    const std::string& site, core::QueryClassId class_id) const {
  const KeyMapSnapshot keys = keys_.load();
  const auto it = keys->find({site, static_cast<int>(class_id)});
  return it == keys->end() ? nullptr : it->second;
}

double ModelRefreshDaemon::DriftDistance(const KeyEntry& entry) {
  if (entry.baseline_total == 0 || entry.recent_states.empty()) return 0.0;
  const size_t states =
      std::max(entry.baseline_hist.size(), entry.recent_hist.size());
  const double recent_total = static_cast<double>(entry.recent_states.size());
  const double baseline_total = static_cast<double>(entry.baseline_total);
  double l1 = 0.0;
  for (size_t s = 0; s < states; ++s) {
    const double p = s < entry.baseline_hist.size()
                         ? static_cast<double>(entry.baseline_hist[s]) /
                               baseline_total
                         : 0.0;
    const double q = s < entry.recent_hist.size()
                         ? static_cast<double>(entry.recent_hist[s]) /
                               recent_total
                         : 0.0;
    l1 += std::abs(p - q);
  }
  return l1 / 2.0;  // total variation: 0 = identical, 1 = disjoint
}

void ModelRefreshDaemon::ResetSignals(KeyEntry& entry) {
  entry.reports = 0;
  entry.ewma_rel_error = 0.0;
  entry.ewma_primed = false;
  entry.baseline_hist.clear();
  entry.baseline_total = 0;
  entry.recent_states.clear();
  entry.recent_hist.clear();
  // recent_obs is kept: feedback priced under the old model is still a real
  // (features, cost, probe) sample of the environment, useful as warm-start
  // material for the *next* refresh.
}

bool ModelRefreshDaemon::UpdateSignalsAndMaybeTrip(KeyEntry& entry,
                                                   double estimated,
                                                   double observed,
                                                   int state) {
  ++entry.reports;

  const double rel_error =
      std::abs(estimated - observed) / std::max(observed, 1e-9);
  if (!entry.ewma_primed) {
    entry.ewma_rel_error = rel_error;
    entry.ewma_primed = true;
  } else {
    entry.ewma_rel_error = config_.ewma_alpha * rel_error +
                           (1.0 - config_.ewma_alpha) * entry.ewma_rel_error;
  }

  if (state >= 0) {
    const size_t s = static_cast<size_t>(state);
    if (entry.baseline_total < config_.min_reports) {
      // The first min_reports states after a publication define "normal".
      if (s >= entry.baseline_hist.size()) entry.baseline_hist.resize(s + 1);
      ++entry.baseline_hist[s];
      ++entry.baseline_total;
    } else {
      if (s >= entry.recent_hist.size()) entry.recent_hist.resize(s + 1);
      ++entry.recent_hist[s];
      entry.recent_states.push_back(state);
      while (entry.recent_states.size() > config_.drift_window) {
        --entry.recent_hist[static_cast<size_t>(entry.recent_states.front())];
        entry.recent_states.pop_front();
      }
    }
  }

  if (entry.reports < config_.min_reports || entry.in_flight) return false;
  if (config_.clock->Now() < entry.next_attempt_at) return false;

  bool trip = false;
  if (entry.ewma_rel_error > config_.error_threshold) {
    error_trips_.fetch_add(1, std::memory_order_relaxed);
    trip = true;
  } else if (entry.recent_states.size() >=
                 std::min(config_.min_reports, config_.drift_window) &&
             DriftDistance(entry) > config_.drift_threshold) {
    drift_trips_.fetch_add(1, std::memory_order_relaxed);
    trip = true;
  }
  if (trip) {
    // A degraded site is already failing its probes; sampling queries for a
    // re-derivation would fail the same way (and pile load on a sick site).
    // Hold the refresh — signals were updated above and are not reset, so
    // the first report after the breaker closes re-trips immediately.
    if (service_->IsSiteDegraded(entry.site)) {
      refreshes_suspended_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    entry.state = RefreshState::kDrifting;
    entry.in_flight = true;  // per-key guard: one refresh at a time
  }
  return trip;
}

void ModelRefreshDaemon::ReportObserved(const std::string& site,
                                        core::QueryClassId class_id,
                                        const std::vector<double>& features,
                                        double observed_cost) {
  const std::shared_ptr<KeyEntry> entry = FindEntry(site, class_id);
  if (entry == nullptr || observed_cost <= 0.0) {
    ignored_reports_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Price the same request through the serving path: yields the current
  // model's estimate, the probe value used, and the contention state —
  // everything the signals need, at estimate cost (no probing query).
  EstimateRequest request;
  request.site = site;
  request.class_id = class_id;
  request.features = features;
  const EstimateResponse response = service_->Estimate(request);
  if (!response.ok()) {
    ignored_reports_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  reports_.fetch_add(1, std::memory_order_relaxed);

  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    // A racing Unwatch may have retired the entry after FindEntry loaded
    // the old key map; a retired key accepts nothing.
    if (entry->retired) {
      ignored_reports_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    core::Observation obs;
    obs.features = features;
    obs.cost = observed_cost;
    obs.probing_cost = response.probing_cost;
    entry->recent_obs.push_back(std::move(obs));
    while (entry->recent_obs.size() > config_.max_recent_observations) {
      entry->recent_obs.pop_front();
    }
    schedule = UpdateSignalsAndMaybeTrip(*entry, response.estimate_seconds,
                                         observed_cost, response.state);
  }
  if (!schedule) return;

  // Flag the key before the refresh is even queued: from the first trip
  // until a new model is published, estimates carry stale_model=true.
  service_->SetModelStale(site, class_id, true);
  refreshes_scheduled_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  // With zero pool workers this runs inline (entry->mutex is not held).
  service_->worker_pool().Submit([this, entry] { RunRefresh(entry); });
}

bool ModelRefreshDaemon::RequestRefresh(const std::string& site,
                                        core::QueryClassId class_id) {
  const std::shared_ptr<KeyEntry> entry = FindEntry(site, class_id);
  if (entry == nullptr) return false;
  if (service_->IsSiteDegraded(site)) {
    refreshes_suspended_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->in_flight || entry->retired) return false;
    if (config_.clock->Now() < entry->next_attempt_at) return false;
    entry->state = RefreshState::kDrifting;
    entry->in_flight = true;
  }
  // Same tail as a signal trip in ReportObserved: flag, count, queue.
  service_->SetModelStale(site, class_id, true);
  refreshes_scheduled_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  service_->worker_pool().Submit([this, entry] { RunRefresh(entry); });
  return true;
}

void ModelRefreshDaemon::RunRefresh(std::shared_ptr<KeyEntry> entry) {
  // The key may have been unwatched (its site retiring) between scheduling
  // and task start: skip the sampling + derivation entirely and drop the
  // stale flag the scheduling tail set — nothing will ever refresh this
  // key now.
  bool retired = false;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->retired) {
      entry->in_flight = false;
      entry->state = RefreshState::kFresh;
      retired = true;
    }
  }
  if (retired) {
    refreshes_abandoned_.fetch_add(1, std::memory_order_relaxed);
    service_->SetModelStale(entry->site, entry->class_id, false);
    std::lock_guard<std::mutex> pending_lock(pending_mutex_);
    --pending_;
    pending_cv_.notify_all();
    return;
  }

  // The site may have degraded between scheduling and task start: don't fire
  // sampling queries at a breaker-open site. Park the key backed-off (no
  // attempt consumed — the re-derivation never ran) so it re-trips once the
  // site recovers.
  if (service_->IsSiteDegraded(entry->site)) {
    refreshes_suspended_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      entry->state = RefreshState::kBackedOff;
      entry->next_attempt_at =
          config_.clock->Now() +
          std::chrono::duration_cast<Clock::Duration>(config_.initial_backoff);
      entry->in_flight = false;
    }
    std::lock_guard<std::mutex> lock(pending_mutex_);
    --pending_;
    pending_cv_.notify_all();
    return;
  }

  core::ObservationSource* source = nullptr;
  core::ObservationSet warm;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->state = RefreshState::kRefreshing;
    source = entry->source;
    warm.assign(entry->recent_obs.begin(), entry->recent_obs.end());
  }

  // The expensive part — sampling + derivation — runs without any lock; the
  // per-key in_flight guard guarantees this is the only task using `source`.
  // A source that throws (an autonomous site can fail a sampling query any
  // way it likes) must not let the exception escape the pool task: it is a
  // failed attempt like any other and takes the backed-off path below.
  std::optional<core::BuildReport> report;
  try {
    report =
        core::RederiveModel(entry->class_id, *source, config_.rederive, warm);
  } catch (...) {
    refresh_exceptions_.fetch_add(1, std::memory_order_relaxed);
    report.reset();
  }

  if (report.has_value()) {
    // One atomic snapshot swap: publishes the model, rewires the tracker's
    // state mapper, and clears the stale flag, all under the service's
    // control mutex. Estimates in flight keep the old snapshot; new ones
    // see the new model — never a torn mix.
    //
    // Publish-if-active: a re-derivation that finishes after
    // UnregisterSite must not re-insert the retired site's model (the
    // "ghost site" resurrection the soak caught). The liveness check and
    // the publication are atomic under the service's control mutex.
    core::CostModel model = report->model;
    const bool published =
        service_->RegisterModelIfActive(entry->site, std::move(model));
    if (!published) {
      refreshes_abandoned_.fetch_add(1, std::memory_order_relaxed);
      service_->SetModelStale(entry->site, entry->class_id, false);
      std::lock_guard<std::mutex> lock(entry->mutex);
      entry->state = RefreshState::kFresh;
      entry->in_flight = false;
    } else {
      refreshes_succeeded_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(entry->mutex);
      ResetSignals(*entry);
      entry->attempts = 0;
      entry->state = RefreshState::kFresh;
      entry->next_attempt_at =
          config_.clock->Now() +
          std::chrono::duration_cast<Clock::Duration>(config_.refresh_cooldown);
      entry->in_flight = false;
    }
  } else {
    refresh_failures_.fetch_add(1, std::memory_order_relaxed);
    bool retired_after_failure = false;
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      retired_after_failure = entry->retired;
    }
    if (retired_after_failure) {
      // Unwatched while the failed attempt ran: no retry will ever come, so
      // the stale flag must not stick to the retired key.
      service_->SetModelStale(entry->site, entry->class_id, false);
    }
    std::lock_guard<std::mutex> lock(entry->mutex);
    ++entry->attempts;
    // Bounded retry: the exponent stops growing after max_attempts, so a
    // permanently failing source settles at one attempt per max_backoff.
    const int exponent = std::min(entry->attempts, config_.max_attempts) - 1;
    const double backoff_ns = std::min(
        static_cast<double>(config_.initial_backoff.count()) *
            std::pow(config_.backoff_multiplier, exponent),
        static_cast<double>(config_.max_backoff.count()));
    entry->next_attempt_at =
        config_.clock->Now() + std::chrono::duration_cast<Clock::Duration>(
                                   std::chrono::nanoseconds(
                                       static_cast<int64_t>(backoff_ns)));
    entry->state = RefreshState::kBackedOff;
    entry->in_flight = false;
    // Signals are intentionally NOT reset: the drift that tripped is still
    // real, so the first report after the backoff expires re-trips. The
    // stale flag also stays set — the old model is still serving.
  }

  std::lock_guard<std::mutex> lock(pending_mutex_);
  --pending_;
  pending_cv_.notify_all();
}

RefreshKeyStatus ModelRefreshDaemon::Status(
    const std::string& site, core::QueryClassId class_id) const {
  RefreshKeyStatus status;
  const std::shared_ptr<KeyEntry> entry = FindEntry(site, class_id);
  if (entry == nullptr) return status;
  std::lock_guard<std::mutex> lock(entry->mutex);
  status.watched = true;
  status.state = entry->state;
  status.ewma_rel_error = entry->ewma_rel_error;
  status.drift_distance = DriftDistance(*entry);
  status.reports = entry->reports;
  status.attempts = entry->attempts;
  return status;
}

ModelRefreshStats ModelRefreshDaemon::Stats() const {
  ModelRefreshStats stats;
  stats.reports = reports_.load(std::memory_order_relaxed);
  stats.ignored_reports = ignored_reports_.load(std::memory_order_relaxed);
  stats.error_trips = error_trips_.load(std::memory_order_relaxed);
  stats.drift_trips = drift_trips_.load(std::memory_order_relaxed);
  stats.refreshes_scheduled =
      refreshes_scheduled_.load(std::memory_order_relaxed);
  stats.refreshes_succeeded =
      refreshes_succeeded_.load(std::memory_order_relaxed);
  stats.refresh_failures = refresh_failures_.load(std::memory_order_relaxed);
  stats.refreshes_suspended =
      refreshes_suspended_.load(std::memory_order_relaxed);
  stats.refresh_exceptions =
      refresh_exceptions_.load(std::memory_order_relaxed);
  stats.refreshes_abandoned =
      refreshes_abandoned_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mscm::runtime
