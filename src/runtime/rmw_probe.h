// Thread-local tally of *shared* atomic read-modify-write operations: the
// cross-thread cache-line traffic that kills multi-core scale-out. Every
// runtime primitive that still performs an RMW on a line another thread may
// touch (shared_ptr refcount bumps, overflow-shard fetch_adds, mutex
// fallbacks) calls RmwProbe::Count at that site; per-thread single-writer
// paths do not. bench/micro_runtime samples Current() around its timed
// loops to report `shared_rmw_per_request` — the acceptance gate is zero on
// the cached estimate hot path.
//
// This is bookkeeping, not detection: it counts the sites we know about.
// Its value is that the hot path is audited — a new RMW sneaking into the
// estimate path shows up as a nonzero bench counter.

#ifndef MSCM_RUNTIME_RMW_PROBE_H_
#define MSCM_RUNTIME_RMW_PROBE_H_

#include <cstdint>

namespace mscm::runtime {

class RmwProbe {
 public:
  static void Count(uint64_t n = 1) { tally_ += n; }

  // Cumulative shared-RMW count for the calling thread.
  static uint64_t Current() { return tally_; }

 private:
  static inline thread_local uint64_t tally_ = 0;
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_RMW_PROBE_H_
