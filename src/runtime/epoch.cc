#include "runtime/epoch.h"

namespace mscm::runtime {
namespace {

// Nesting depth of EpochGuards on this thread; only the outermost pins.
thread_local int g_guard_depth = 0;

}  // namespace

EpochDomain::EpochDomain() = default;

EpochDomain& EpochDomain::Global() {
  static EpochDomain* domain = new EpochDomain();  // leaked, see header
  return *domain;
}

void EpochDomain::Retire(std::shared_ptr<const void> keepalive) {
  // Stamp = epoch value after the increment: readers pinned at >= stamp
  // observed the increment (seq_cst) and therefore the publisher's newer
  // pointer; readers pinned below it may still hold the old one.
  const uint64_t stamp =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    retired_.push_back(Retired{stamp, std::move(keepalive)});
  }
  Reclaim(false);
}

void EpochDomain::Reclaim(bool wait_for_readers) {
  // A fresh pin always reads the current global epoch, which is >= every
  // stamp already in the retired list, so the scan below cannot miss a
  // reader that pins after it: new pins never block old records.
  uint64_t min_pinned = ~uint64_t{0};
  for (const ReaderSlot& slot : slots_) {
    const uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min_pinned) min_pinned = e;
  }

  // Overflow readers have no slot; an exclusive acquisition proves none is
  // in flight. Normally just try: if one is active, a later Retire/Reclaim
  // will catch up. When draining we must wait them out.
  RmwProbe::Count();
  if (wait_for_readers) {
    overflow_readers_.lock();
  } else if (!overflow_readers_.try_lock()) {
    return;
  }
  overflow_readers_.unlock();

  std::vector<Retired> free_now;
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->stamp <= min_pinned) {
        free_now.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    retired_.erase(keep, retired_.end());
  }
  // Keepalive destructors run outside every domain lock: they may tear
  // down whole catalogs or tracker maps (which join prober threads).
  free_now.clear();
}

size_t EpochDomain::RetiredCount() const {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  return retired_.size();
}

EpochGuard::EpochGuard()
    : slot_(ThreadRegistry::CurrentSlot()), outermost_(++g_guard_depth == 1) {
  if (!outermost_) return;
  EpochDomain& domain = EpochDomain::Global();
  if (slot_ >= 0) {
    const uint64_t e = domain.global_epoch_.load(std::memory_order_seq_cst);
    domain.slots_[slot_].epoch.store(e, std::memory_order_seq_cst);
  } else {
    RmwProbe::Count();
    domain.overflow_readers_.lock_shared();
  }
}

EpochGuard::~EpochGuard() {
  if (--g_guard_depth > 0 || !outermost_) return;
  EpochDomain& domain = EpochDomain::Global();
  if (slot_ >= 0) {
    domain.slots_[slot_].epoch.store(0, std::memory_order_seq_cst);
  } else {
    domain.overflow_readers_.unlock_shared();
  }
}

}  // namespace mscm::runtime
