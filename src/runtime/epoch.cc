#include "runtime/epoch.h"

#include <thread>

namespace mscm::runtime {
namespace {

// Nesting depth of EpochGuards on this thread; only the outermost pins.
thread_local int g_guard_depth = 0;

}  // namespace

EpochDomain::EpochDomain() = default;

EpochDomain& EpochDomain::Global() {
  static EpochDomain* domain = new EpochDomain();  // leaked, see header
  return *domain;
}

void EpochDomain::Retire(std::shared_ptr<const void> keepalive) {
  // Stamp = epoch value after the increment: readers pinned at >= stamp
  // observed the increment (seq_cst) and therefore the publisher's newer
  // pointer; readers pinned below it may still hold the old one.
  const uint64_t stamp =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    retired_.push_back(Retired{stamp, std::move(keepalive)});
  }
  Reclaim(false);
}

void EpochDomain::Reclaim(bool wait_for_readers) {
  // Drain target: when waiting, this call is responsible for every record
  // already stamped at entry; records retired concurrently after that
  // belong to their own publishers' later Reclaims.
  const uint64_t target =
      wait_for_readers ? global_epoch_.load(std::memory_order_seq_cst) : 0;
  for (;;) {
    // Detach the retired list FIRST. Every record in the snapshot was
    // stamped (epoch fetch_add) and pushed before we acquired
    // retired_mutex_, so the reader scan below is ordered after each
    // candidate's stamp: a reader still holding a candidate's old pointer
    // pinned with e < stamp, and that pin store precedes the stamp — hence
    // precedes our scan loads — in the seq_cst order, so the scan sees it
    // and the record stays blocked. Scanning before snapshotting (the old
    // order) let a record retired by a concurrent publisher be freed
    // against a scan that predated — and missed — its readers.
    std::vector<Retired> candidates;
    {
      std::lock_guard<std::mutex> lock(retired_mutex_);
      candidates.swap(retired_);
    }
    if (candidates.empty() && !wait_for_readers) return;

    uint64_t min_pinned = ~uint64_t{0};
    for (const ReaderSlot& slot : slots_) {
      const uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min_pinned) min_pinned = e;
    }

    // Overflow readers have no slot; an exclusive acquisition proves none
    // that predates the snapshot is in flight. Normally just try: if one is
    // active, a later Retire/Reclaim will catch up. When draining we must
    // wait them out.
    RmwProbe::Count();
    bool overflow_clear = true;
    if (wait_for_readers) {
      overflow_readers_.lock();
      overflow_readers_.unlock();
    } else if (overflow_readers_.try_lock()) {
      overflow_readers_.unlock();
    } else {
      overflow_clear = false;
    }

    std::vector<Retired> free_now;
    std::vector<Retired> blocked;
    for (Retired& record : candidates) {
      if (overflow_clear && record.stamp <= min_pinned) {
        free_now.push_back(std::move(record));
      } else {
        blocked.push_back(std::move(record));
      }
    }

    // Draining is done only once nothing stamped at-or-before the target is
    // still blocked — slotted readers included, not just overflow ones.
    bool drained = true;
    if (wait_for_readers) {
      for (const Retired& record : blocked) {
        if (record.stamp <= target) {
          drained = false;
          break;
        }
      }
    }
    if (!blocked.empty()) {
      std::lock_guard<std::mutex> lock(retired_mutex_);
      for (Retired& record : blocked) retired_.push_back(std::move(record));
    }
    // Keepalive destructors run outside every domain lock: they may tear
    // down whole catalogs or tracker maps (which join prober threads).
    free_now.clear();
    if (!wait_for_readers || drained) return;
    std::this_thread::yield();
  }
}

size_t EpochDomain::RetiredCount() const {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  return retired_.size();
}

EpochGuard::EpochGuard()
    : slot_(ThreadRegistry::CurrentSlot()), outermost_(++g_guard_depth == 1) {
  if (!outermost_) return;
  EpochDomain& domain = EpochDomain::Global();
  if (slot_ >= 0) {
    const uint64_t e = domain.global_epoch_.load(std::memory_order_seq_cst);
    domain.slots_[slot_].epoch.store(e, std::memory_order_seq_cst);
  } else {
    RmwProbe::Count();
    domain.overflow_readers_.lock_shared();
  }
}

EpochGuard::~EpochGuard() {
  if (--g_guard_depth > 0 || !outermost_) return;
  EpochDomain& domain = EpochDomain::Global();
  if (slot_ >= 0) {
    domain.slots_[slot_].epoch.store(0, std::memory_order_seq_cst);
  } else {
    domain.overflow_readers_.unlock_shared();
  }
}

}  // namespace mscm::runtime
