// A small fixed-size worker pool for fanning estimation batches out across
// cores. Deliberately minimal: FIFO queue of std::function tasks, a
// blocking ParallelFor that splits an index range into chunks, and inline
// execution when constructed with zero workers (degenerates to a plain
// loop — handy for deterministic tests and single-core machines).

#ifndef MSCM_RUNTIME_THREAD_POOL_H_
#define MSCM_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mscm::runtime {

class ThreadPool {
 public:
  // `num_threads` < 0 → std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task. With zero workers the task runs inline.
  void Submit(std::function<void()> task);

  // Runs body(begin, end) over [0, n) split into per-worker chunks of at
  // least `min_grain` indexes; blocks until every chunk finished. The
  // calling thread processes the first chunk itself, so the pool adds
  // parallelism without a handoff for small batches.
  void ParallelFor(size_t n, size_t min_grain,
                   const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_THREAD_POOL_H_
