#include "runtime/contention_tracker.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace mscm::runtime {

ContentionTracker::ContentionTracker(ContentionTrackerConfig config,
                                     ProbeFn probe,
                                     LatencyHistogram* probe_latency)
    : config_(std::move(config)),
      probe_(std::move(probe)),
      probe_latency_(probe_latency) {
  MSCM_CHECK(probe_ != nullptr);
  MSCM_CHECK(config_.clock != nullptr);
}

ContentionTracker::~ContentionTracker() { Stop(); }

void ContentionTracker::Start() {
  if (config_.probe_interval.count() <= 0) return;
  std::lock_guard<std::mutex> lock(thread_mutex_);
  // A joinable thread_ is a live loop: Stop() moves the thread out under
  // this mutex in the same critical section that raises stop_.
  if (thread_.joinable()) return;
  stop_ = false;
  // Stamp a fresh generation. If a Stop() is mid-join on the old loop, the
  // old loop exits on its own generation check — resetting stop_ here
  // cannot resurrect it, and the new loop below is a distinct thread the
  // stopper never waits for.
  const uint64_t generation = ++generation_;
  thread_ = std::thread([this, generation] { RunLoop(generation); });
}

void ContentionTracker::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!thread_.joinable()) return;
    stop_ = true;
    // Supersede the running loop's generation so a concurrent Start() — which
    // resets stop_ — still terminates it and the join below cannot hang.
    ++generation_;
    stop_cv_.notify_all();
    to_join = std::move(thread_);
  }
  to_join.join();
}

bool ContentionTracker::ProbeOnce() {
  // The sequence ticket is taken *before* the probe runs: publish order then
  // follows probe-start order, and a slow probe racing a faster, later one
  // (manual ProbeNow vs the background loop) is detected at publish time.
  const uint64_t sequence =
      next_sequence_.fetch_add(1, std::memory_order_relaxed) + 1;

  // The probe runs outside the cache mutex: probing can take seconds and
  // readers must keep getting the previous reading meanwhile.
  const auto started = std::chrono::steady_clock::now();
  const double cost = probe_();
  const auto elapsed = std::chrono::steady_clock::now() - started;
  if (probe_latency_ != nullptr) {
    probe_latency_->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed));
  }

  if (std::isnan(cost) || cost < 0.0) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  probes_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (reading_.has_value && sequence <= reading_.sequence) {
    // A probe that started after this one already published: keep the newer
    // reading (and its timestamp — republishing would serve old contention
    // as fresh).
    discarded_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  reading_.has_value = true;
  reading_.probing_cost = cost;
  reading_.state = mapper_ ? mapper_(cost) : -1;
  reading_.sequence = sequence;
  reading_at_ = config_.clock->Now();
  return true;
}

ProbeReading ContentionTracker::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ProbeReading out = reading_;
  if (out.has_value) {
    const auto age = config_.clock->Now() - reading_at_;
    out.age = std::chrono::duration_cast<std::chrono::nanoseconds>(age);
    out.stale = out.age > config_.ttl;
  }
  return out;
}

void ContentionTracker::SetStateMapper(std::function<int(double)> mapper) {
  std::lock_guard<std::mutex> lock(mutex_);
  mapper_ = std::move(mapper);
  if (reading_.has_value) {
    reading_.state = mapper_ ? mapper_(reading_.probing_cost) : -1;
  }
}

void ContentionTracker::RunLoop(uint64_t generation) {
  for (;;) {
    ProbeOnce();
    std::unique_lock<std::mutex> lock(thread_mutex_);
    // Exit on stop *or* when a newer Start/Stop superseded this loop's
    // generation (a racing Start may have reset stop_ to false already).
    if (stop_cv_.wait_for(lock, config_.probe_interval, [this, generation] {
          return stop_ || generation_ != generation;
        })) {
      return;
    }
  }
}

}  // namespace mscm::runtime
