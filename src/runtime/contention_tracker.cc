#include "runtime/contention_tracker.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace mscm::runtime {

ContentionTracker::ContentionTracker(ContentionTrackerConfig config,
                                     ProbeFn probe,
                                     LatencyHistogram* probe_latency)
    : config_(std::move(config)),
      probe_(std::move(probe)),
      probe_latency_(probe_latency) {
  MSCM_CHECK(probe_ != nullptr);
  MSCM_CHECK(config_.clock != nullptr);
}

ContentionTracker::~ContentionTracker() { Stop(); }

void ContentionTracker::Start() {
  if (config_.probe_interval.count() <= 0) return;
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { RunLoop(); });
}

void ContentionTracker::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!thread_.joinable()) return;
    stop_ = true;
    stop_cv_.notify_all();
    to_join = std::move(thread_);
  }
  to_join.join();
}

bool ContentionTracker::ProbeOnce() {
  // The probe runs outside the cache mutex: probing can take seconds and
  // readers must keep getting the previous reading meanwhile.
  const auto started = std::chrono::steady_clock::now();
  const double cost = probe_();
  const auto elapsed = std::chrono::steady_clock::now() - started;
  if (probe_latency_ != nullptr) {
    probe_latency_->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed));
  }

  if (std::isnan(cost) || cost < 0.0) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  const uint64_t sequence = probes_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::lock_guard<std::mutex> lock(mutex_);
  reading_.has_value = true;
  reading_.probing_cost = cost;
  reading_.state = mapper_ ? mapper_(cost) : -1;
  reading_.sequence = sequence;
  reading_at_ = config_.clock->Now();
  return true;
}

ProbeReading ContentionTracker::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ProbeReading out = reading_;
  if (out.has_value) {
    const auto age = config_.clock->Now() - reading_at_;
    out.age = std::chrono::duration_cast<std::chrono::nanoseconds>(age);
    out.stale = out.age > config_.ttl;
  }
  return out;
}

void ContentionTracker::SetStateMapper(std::function<int(double)> mapper) {
  std::lock_guard<std::mutex> lock(mutex_);
  mapper_ = std::move(mapper);
  if (reading_.has_value) {
    reading_.state = mapper_ ? mapper_(reading_.probing_cost) : -1;
  }
}

void ContentionTracker::RunLoop() {
  for (;;) {
    ProbeOnce();
    std::unique_lock<std::mutex> lock(thread_mutex_);
    if (stop_cv_.wait_for(lock, config_.probe_interval,
                          [this] { return stop_; })) {
      return;
    }
  }
}

}  // namespace mscm::runtime
