#include "runtime/contention_tracker.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "runtime/rmw_probe.h"

namespace mscm::runtime {

namespace {

constexpr double kNoReading = std::numeric_limits<double>::quiet_NaN();

bool AdaptiveCadence(const ContentionTrackerConfig& config) {
  return config.min_probe_interval.count() > 0 &&
         config.max_probe_interval.count() > 0;
}

}  // namespace

ContentionTracker::ContentionTracker(ContentionTrackerConfig config,
                                     ProbeFn probe,
                                     LatencyHistogram* probe_latency)
    : config_(std::move(config)),
      probe_(std::move(probe)),
      probe_latency_(probe_latency),
      published_cost_bits_(std::bit_cast<uint64_t>(kNoReading)),
      current_interval_ns_(config_.probe_interval.count()),
      breaker_(config_.breaker, config_.clock) {
  MSCM_CHECK(probe_ != nullptr);
  MSCM_CHECK(config_.clock != nullptr);
  if (AdaptiveCadence(config_)) {
    MSCM_CHECK_MSG(config_.min_probe_interval <= config_.max_probe_interval,
                   "min_probe_interval must not exceed max_probe_interval");
  }
}

ContentionTracker::~ContentionTracker() { Stop(); }

void ContentionTracker::Start() {
  if (config_.probe_interval.count() <= 0) return;
  std::lock_guard<std::mutex> lock(thread_mutex_);
  // A joinable thread_ is a live loop: Stop() moves the thread out under
  // this mutex in the same critical section that raises stop_.
  if (thread_.joinable()) return;
  stop_ = false;
  // Stamp a fresh generation. If a Stop() is mid-join on the old loop, the
  // old loop exits on its own generation check — resetting stop_ here
  // cannot resurrect it, and the new loop below is a distinct thread the
  // stopper never waits for.
  const uint64_t generation = ++generation_;
  thread_ = std::thread([this, generation] { RunLoop(generation); });
}

void ContentionTracker::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!thread_.joinable()) return;
    stop_ = true;
    // Supersede the running loop's generation so a concurrent Start() — which
    // resets stop_ — still terminates it and the join below cannot hang.
    ++generation_;
    stop_cv_.notify_all();
    to_join = std::move(thread_);
  }
  to_join.join();
}

bool ContentionTracker::RunProbe(double* cost) {
  // Without a deadline the probe runs inline; the only armor needed is the
  // exception catch — a throwing probe is a failed probe, never a dead
  // prober thread.
  if (config_.probe_timeout.count() <= 0) {
    try {
      *cost = probe_();
      return true;
    } catch (...) {
      return false;
    }
  }

  // With a deadline the probe runs on its own short-lived thread and the
  // caller waits at most probe_timeout for it. All communication goes
  // through heap-shared state: an abandoned probe that eventually finishes
  // (or hangs forever) touches only that state, never the tracker — so a
  // permanently hung probe can never wedge Stop() or the destructor, and a
  // late result can never publish.
  struct Pending {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool threw = false;
    double cost = std::numeric_limits<double>::quiet_NaN();
  };
  auto pending = std::make_shared<Pending>();
  std::thread([probe = probe_, pending] {
    double c = std::numeric_limits<double>::quiet_NaN();
    bool threw = false;
    try {
      c = probe();
    } catch (...) {
      threw = true;
    }
    std::lock_guard<std::mutex> lock(pending->mutex);
    pending->done = true;
    pending->threw = threw;
    pending->cost = c;
    pending->cv.notify_all();
  }).detach();

  std::unique_lock<std::mutex> lock(pending->mutex);
  if (!pending->cv.wait_for(lock, config_.probe_timeout,
                            [&] { return pending->done; })) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (pending->threw) return false;
  *cost = pending->cost;
  return true;
}

bool ContentionTracker::ProbeOnce() {
  const bool was_degraded = breaker_.degraded();
  if (!breaker_.AllowRequest()) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // The sequence ticket is taken *before* the probe runs: publish order then
  // follows probe-start order, and a slow probe racing a faster, later one
  // (manual ProbeNow vs the background loop) is detected at publish time. A
  // timed-out probe burns its ticket, so its abandoned result stays behind
  // any retry that publishes after it.
  const uint64_t sequence =
      next_sequence_.fetch_add(1, std::memory_order_relaxed) + 1;

  // The probe runs outside the cache mutex: probing can take seconds and
  // readers must keep getting the previous reading meanwhile.
  const auto started = std::chrono::steady_clock::now();
  double cost = kNoReading;
  const bool returned = RunProbe(&cost);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  if (probe_latency_ != nullptr) {
    probe_latency_->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed));
  }

  // A cost must be finite *and* non-negative to publish: +inf passes a
  // NaN/negative check but bit-cast into published_cost_bits_ it would be
  // served as a real probing cost (and mapped to the top state) forever.
  if (!returned || !(std::isfinite(cost) && cost >= 0.0)) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    breaker_.RecordFailure();
    NotifyDegradedTransition(was_degraded);
    return false;
  }

  breaker_.RecordSuccess();
  probes_.fetch_add(1, std::memory_order_relaxed);
  StateChangeFn callback;
  int old_state = -1;
  int new_state = -1;
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (reading_.has_value && sequence <= reading_.sequence) {
      // A probe that started after this one already published: keep the newer
      // reading (and its timestamp — republishing would serve old contention
      // as fresh).
      discarded_.fetch_add(1, std::memory_order_relaxed);
    } else {
      const bool first = !reading_.has_value;
      old_state = first ? -1 : reading_.state;
      reading_.has_value = true;
      reading_.probing_cost = cost;
      reading_.state = mapper_ ? mapper_(cost) : -1;
      reading_.sequence = sequence;
      reading_at_ = config_.clock->Now();
      published_stale_ = false;
      new_state = reading_.state;
      // Publish cost before version: a lock-free validator that sees the old
      // version paired with the new cost falls back to its bounds check, which
      // rejects exactly the entries this transition invalidates.
      published_cost_bits_.store(std::bit_cast<uint64_t>(cost),
                                 std::memory_order_release);
      changed = first || new_state != old_state;
      if (changed) {
        state_version_.fetch_add(1, std::memory_order_release);
        callback = state_change_;
      }
    }
  }
  // Outside the lock: the callback typically fans out into cache shards and
  // must not nest under the tracker mutex.
  if (changed && callback) callback(old_state, new_state);
  // A successful half-open trial closes the breaker: publish the flip.
  NotifyDegradedTransition(was_degraded);
  return true;
}

void ContentionTracker::NotifyDegradedTransition(bool was_degraded) {
  if (breaker_.degraded() == was_degraded) return;
  StateChangeFn callback;
  int state = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Responses cached before the flip embed the old degraded flag; bumping
    // the version retires them even though the state itself did not move.
    state_version_.fetch_add(1, std::memory_order_release);
    callback = state_change_;
    state = reading_.has_value ? reading_.state : -1;
  }
  if (callback) callback(state, state);
}

ProbeReading ContentionTracker::Current() const {
  RmwProbe::Count(2);  // mutex_ lock + unlock — the probe-resolve RMW cost
  std::lock_guard<std::mutex> lock(mutex_);
  ProbeReading out = reading_;
  out.degraded = breaker_.degraded();
  if (out.has_value) {
    const auto age = config_.clock->Now() - reading_at_;
    out.age = std::chrono::duration_cast<std::chrono::nanoseconds>(age);
    out.stale = out.age > config_.ttl;
    if (out.stale != published_stale_) {
      // Freshness changed since the last publication: responses cached under
      // the old version carried the old stale flag, so retire them even
      // though the state itself did not move.
      published_stale_ = out.stale;
      state_version_.fetch_add(1, std::memory_order_release);
    }
  }
  return out;
}

double ContentionTracker::published_probing_cost() const {
  return std::bit_cast<double>(
      published_cost_bits_.load(std::memory_order_acquire));
}

void ContentionTracker::SetStateMapper(std::function<int(double)> mapper) {
  StateChangeFn callback;
  int old_state = -1;
  int new_state = -1;
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    mapper_ = std::move(mapper);
    if (reading_.has_value) {
      old_state = reading_.state;
      reading_.state = mapper_ ? mapper_(reading_.probing_cost) : -1;
      new_state = reading_.state;
      if (new_state != old_state) {
        changed = true;
        state_version_.fetch_add(1, std::memory_order_release);
        callback = state_change_;
      }
    }
  }
  if (changed && callback) callback(old_state, new_state);
}

void ContentionTracker::SetStateBoundaries(std::vector<double> boundaries) {
  std::lock_guard<std::mutex> lock(mutex_);
  boundaries_ = std::move(boundaries);
}

bool ContentionTracker::BoundaryDistance(double* distance,
                                         double* boundary) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!reading_.has_value || boundaries_.empty() ||
      !std::isfinite(reading_.probing_cost)) {
    return false;
  }
  double best = std::numeric_limits<double>::infinity();
  double best_boundary = 0.0;
  for (double b : boundaries_) {
    const double d = std::abs(reading_.probing_cost - b);
    if (d < best) {
      best = d;
      best_boundary = b;
    }
  }
  if (distance != nullptr) *distance = best;
  if (boundary != nullptr) *boundary = best_boundary;
  return true;
}

void ContentionTracker::SetStateChangeCallback(StateChangeFn callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  state_change_ = std::move(callback);
}

std::chrono::nanoseconds ContentionTracker::AdaptInterval(
    std::chrono::nanoseconds current, bool state_changed,
    std::chrono::nanoseconds min_interval,
    std::chrono::nanoseconds max_interval) {
  // Multiplicative decrease / gentler increase: react to a flip immediately,
  // back off only after sustained quiet, never leave [min, max].
  const auto next = state_changed ? current / 2 : current + current / 4;
  return std::clamp(next, min_interval, max_interval);
}

void ContentionTracker::RunLoop(uint64_t generation) {
  const bool adaptive = AdaptiveCadence(config_);
  auto interval = config_.probe_interval;
  if (adaptive) {
    interval = std::clamp(interval, config_.min_probe_interval,
                          config_.max_probe_interval);
    current_interval_ns_.store(interval.count(), std::memory_order_relaxed);
  }
  for (;;) {
    const uint64_t version_before =
        state_version_.load(std::memory_order_acquire);
    const bool ok = ProbeOnce();
    // Re-evaluate freshness so a failed probe publishes the fresh→stale
    // transition (a successful one resets the age and publishes fresh).
    Current();
    if (adaptive) {
      // Any version movement — state flip, first reading, staleness
      // transition — counts as environment activity worth probing faster for.
      const bool flipped =
          state_version_.load(std::memory_order_acquire) != version_before;
      interval = AdaptInterval(interval, flipped, config_.min_probe_interval,
                               config_.max_probe_interval);
      current_interval_ns_.store(interval.count(), std::memory_order_relaxed);
    }
    // Failed probes retry on an exponential backoff instead of sleeping the
    // whole interval, so a transient failure gets several retries before the
    // reading crosses its TTL. The backoff keys off the breaker's
    // consecutive-failure count and never exceeds the regular interval.
    auto wait = interval;
    if (!ok && config_.failure_retry.count() > 0 && interval.count() > 0) {
      const int consecutive = std::max(1, consecutive_failures());
      int64_t retry_ns = config_.failure_retry.count();
      for (int i = 1; i < consecutive && retry_ns < interval.count(); ++i) {
        retry_ns *= 2;
      }
      wait = std::min(std::chrono::nanoseconds(retry_ns), interval);
    }
    std::unique_lock<std::mutex> lock(thread_mutex_);
    // Exit on stop *or* when a newer Start/Stop superseded this loop's
    // generation (a racing Start may have reset stop_ to false already).
    if (stop_cv_.wait_for(lock, wait, [this, generation] {
          return stop_ || generation_ != generation;
        })) {
      return;
    }
  }
}

}  // namespace mscm::runtime
