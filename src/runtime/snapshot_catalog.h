// Concurrency wrapper around the MDBS global catalog (copy-on-write with
// atomically swapped immutable snapshots).
//
// core::GlobalCatalog::Find() hands out raw pointers that a concurrent
// Register() for the same key would invalidate. Here, writers never mutate a
// published catalog: Register() copies the current catalog, applies the
// change, and atomically publishes the copy as a new
// std::shared_ptr<const GlobalCatalog>. Readers grab the current snapshot
// with one atomic shared_ptr load — no lock, and every Find() /
// FindCompiled() pointer stays valid for as long as the reader holds the
// snapshot, no matter how many registrations happen meanwhile. Because each
// registered CostModel carries its core::CompiledEquations serving table,
// publishing a snapshot *is* publishing the compiled form: the runtime's
// estimate paths call FindCompiled() on a pinned snapshot and evaluate the
// immutable table directly. Writers serialize on a mutex (model
// registration is rare: once per derived/rebuilt model).

#ifndef MSCM_RUNTIME_SNAPSHOT_CATALOG_H_
#define MSCM_RUNTIME_SNAPSHOT_CATALOG_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/catalog.h"
#include "runtime/epoch.h"

namespace mscm::runtime {

class SnapshotCatalog {
 public:
  using Snapshot = std::shared_ptr<const core::GlobalCatalog>;

  SnapshotCatalog() : current_(std::make_shared<const core::GlobalCatalog>()) {}

  SnapshotCatalog(const SnapshotCatalog&) = delete;
  SnapshotCatalog& operator=(const SnapshotCatalog&) = delete;

  // The current immutable snapshot. Never null; cheap (one atomic refcount
  // bump); safe from any thread. Cold path — hot readers use Read().
  Snapshot snapshot() const { return current_.load(); }

  // Epoch-protected raw read for the estimate hot path: valid while `guard`
  // is alive, zero shared atomic RMWs. Never null (a catalog is published
  // at construction).
  const core::GlobalCatalog* Read(const EpochGuard& guard) const {
    return current_.Read(guard);
  }

  // Copy-on-write registration of (site, model.class_id()) → model.
  void Register(const std::string& site, core::CostModel model);

  // General copy-on-write edit for multi-entry updates (e.g. dropping a
  // site, bulk-loading a persisted catalog): `mutate` receives a private
  // copy of the current catalog, which is then published as one snapshot.
  void Update(const std::function<void(core::GlobalCatalog&)>& mutate);

  // Copy-on-write edit published under the *current* revision — the
  // adaptation row-swap path. A normal Update bumps the revision, which
  // invalidates every estimate-cache entry (entries key on it); an
  // adaptation swap changes only specific per-state coefficient rows, whose
  // invalidation the caller handles at (site, state) grain, while every
  // other row is bit-identical — so surviving cache entries remain
  // value-correct under the preserved revision. Use ONLY for edits with
  // that property.
  void UpdatePreservingRevision(
      const std::function<void(core::GlobalCatalog&)>& mutate);

  // Number of snapshots published (0 for a freshly constructed catalog).
  uint64_t version() const { return version_.load(std::memory_order_relaxed); }

  size_t size() const { return snapshot()->size(); }

 private:
  std::mutex writer_mutex_;
  // Old snapshots are retired into the global epoch domain when replaced:
  // cold holders (Snapshot shared_ptrs) and in-flight epoch readers both
  // keep them alive until released.
  EpochPublished<core::GlobalCatalog> current_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_SNAPSHOT_CATALOG_H_
