// Request/response types of the online estimation data plane, split out of
// estimation_service.h so the estimate cache can traffic in them without
// depending on the service (the service owns a cache, not the reverse).

#ifndef MSCM_RUNTIME_ESTIMATE_TYPES_H_
#define MSCM_RUNTIME_ESTIMATE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query_class.h"

namespace mscm::runtime {

enum class EstimateStatus {
  kOk,
  kNoModel,  // no cost model registered for (site, class)
  kNoProbe,  // no probing_cost given and no cached probe for the site
  // The request itself is malformed: a non-finite feature, a NaN probing
  // cost, or a +inf probing cost. Rejected at the service boundary before
  // touching the estimate cache.
  kInvalidRequest,
};

const char* ToString(EstimateStatus s);

struct EstimateRequest {
  std::string site;
  core::QueryClassId class_id = core::QueryClassId::kUnarySeqScan;
  std::vector<double> features;
  // Probing cost to estimate under; negative = use the site's cached probe.
  double probing_cost = -1.0;
};

struct EstimateResponse {
  EstimateStatus status = EstimateStatus::kNoModel;
  double estimate_seconds = 0.0;
  double probing_cost = 0.0;  // the probe value actually used
  int state = -1;             // contention state under the request's model
  bool stale_probe = false;   // cached probe exceeded its TTL
  // The (site, class) model is flagged stale: the refresh daemon has
  // detected drift and a re-derivation is pending or backing off. The
  // estimate is still the best available — callers should widen error bars.
  bool stale_model = false;
  // The site's probe circuit breaker is open or half-open: probes against
  // the site are failing and the estimate was priced from the last known
  // contention state, not a recent measurement. Degraded responses are never
  // cached.
  bool degraded = false;
  // Adaptation generation of the model that priced this estimate (0 = the
  // base fit, +1 per streaming-adaptation swap). Feedback consumers echo it
  // back so (estimate, actual) pairs are credited to the model generation
  // that actually produced the estimate — never to a newer one published in
  // between.
  uint64_t model_generation = 0;

  bool ok() const { return status == EstimateStatus::kOk; }
};

// One observed (estimate, actual) pair flowing back from served traffic —
// the raw material of the streaming-RLS fast adaptation path. Arrives from
// in-process callers or the wire (net kReportActual).
struct FeedbackReport {
  std::string site;
  core::QueryClassId class_id = core::QueryClassId::kUnarySeqScan;
  std::vector<double> features;
  double actual_cost = 0.0;  // observed execution cost, seconds
  // Probing cost the query ran under; negative = resolve from the site's
  // cached probe at drain time (same semantics as EstimateRequest).
  double probing_cost = -1.0;
  // The generation stamped on the EstimateResponse this report closes the
  // loop on; reports from generations older than the currently served model
  // lineage are still folded in (the RLS window forgets), but a full
  // re-derivation resets the lineage and drops buffered stragglers.
  uint64_t model_generation = 0;
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_ESTIMATE_TYPES_H_
