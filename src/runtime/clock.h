// Injectable monotonic clock for the online runtime. Production code uses
// the singleton SystemClock (std::chrono::steady_clock); tests inject a
// FakeClock and drive TTL / staleness logic deterministically.

#ifndef MSCM_RUNTIME_CLOCK_H_
#define MSCM_RUNTIME_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mscm::runtime {

class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  using Duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;

  // Process-wide wall clock (steady). Never null.
  static Clock* System();
};

class SystemClock : public Clock {
 public:
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }
};

// A clock that only moves when told to. Thread-safe: Advance() may race with
// Now() (readers see either the old or the new time).
class FakeClock : public Clock {
 public:
  TimePoint Now() const override {
    return TimePoint{} + Duration{offset_.load(std::memory_order_acquire)};
  }

  void Advance(Duration d) {
    offset_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

 private:
  std::atomic<Duration::rep> offset_{0};
};

inline Clock* Clock::System() {
  static SystemClock* clock = new SystemClock;
  return clock;
}

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_CLOCK_H_
