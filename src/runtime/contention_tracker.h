// Background contention tracking for one local site (paper §3.1/§3.3 made
// continuous): a prober periodically runs the site's probing query — or an
// Eq. 2 monitor-statistics estimate of it — maps the observed cost to a
// contention state through a model's state partition, and caches
// (state, probing_cost, timestamp). Estimation requests read the cache
// instead of paying a probing query per estimate.
//
// Freshness contract: a reading older than the TTL is still served (last
// known state beats no state — the environment usually drifts, it does not
// teleport) but is flagged `stale` so the caller can widen its error bars or
// trigger a synchronous probe. Probe failures — a non-finite or negative
// cost, a thrown exception, or a probe abandoned past its deadline — keep
// the previous reading and bump a failure counter; with a retry backoff
// configured, the background loop retries failed probes well before the
// reading crosses its TTL. A per-site circuit breaker (optional) suppresses
// probing entirely after a run of consecutive failures and re-admits a trial
// probe after a cooling-off period; while it is not closed the tracker's
// readings are flagged `degraded`.

#ifndef MSCM_RUNTIME_CONTENTION_TRACKER_H_
#define MSCM_RUNTIME_CONTENTION_TRACKER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/circuit_breaker.h"
#include "runtime/clock.h"
#include "runtime/runtime_stats.h"

namespace mscm::runtime {

struct ContentionTrackerConfig {
  std::string site = "site";
  // Readings older than this are served with stale=true.
  std::chrono::nanoseconds ttl = std::chrono::seconds(5);
  // Background probe period; zero disables the thread (manual ProbeOnce()).
  // With adaptive cadence enabled this is the *starting* period.
  std::chrono::nanoseconds probe_interval{0};
  // Adaptive cadence (enabled when both bounds are positive): after each
  // background probe the interval halves toward min_probe_interval if the
  // probe moved the state version (state flip, staleness transition) and
  // grows by a quarter toward max_probe_interval if it did not — fast
  // detection when the environment is flapping, few wasted probes when it is
  // quiet (the paper's dynamic-environment premise, §3.1). When disabled
  // (either bound zero) the cadence is the fixed probe_interval.
  std::chrono::nanoseconds min_probe_interval{0};
  std::chrono::nanoseconds max_probe_interval{0};
  // Probe deadline: a probe still running after this long is abandoned — the
  // prober stops waiting, counts a failure (and a timeout), and moves on; the
  // abandoned probe's sequence ticket is burned, so its eventual result can
  // never publish over a newer reading. Zero disables the deadline (probes
  // run inline on the prober thread and a hang blocks it). The wait is a real
  // condition-variable wait, so the deadline is measured in wall time, not on
  // the injected clock.
  std::chrono::nanoseconds probe_timeout{0};
  // After a failed probe the background loop retries after
  // `failure_retry * 2^(consecutive_failures - 1)` (capped at the current
  // probe interval) instead of sleeping the whole interval — a transiently
  // failing site usually gets several retries before the cached reading
  // crosses its TTL and the stale flag flips. Zero disables (failures wait
  // the full interval).
  std::chrono::nanoseconds failure_retry{0};
  // Circuit breaker over consecutive probe failures (failure_threshold 0
  // disables). While not closed, probes are suppressed — except the
  // half-open trial — and readings are flagged `degraded`. Timed on `clock`.
  CircuitBreakerConfig breaker;
  Clock* clock = Clock::System();
};

// The cached contention reading for a site.
struct ProbeReading {
  bool has_value = false;   // false until the first successful probe
  double probing_cost = 0.0;
  int state = -1;           // -1 when no state mapper is installed
  bool stale = false;       // age > TTL at read time
  // The site's probe circuit breaker is open or half-open: probes are
  // failing and this is the last known state, not a recent measurement.
  bool degraded = false;
  std::chrono::nanoseconds age{0};
  // Probe-start order of the published reading. A probe only publishes if
  // its sequence is newer than the published one, so a slow probe that
  // started before the current reading was taken can never clobber it.
  uint64_t sequence = 0;
};

class ContentionTracker {
 public:
  // Measures the site's current probing cost in seconds. Any non-finite or
  // negative return means the probe failed, and a thrown exception is caught
  // and counted as a failure too. Called from the tracker thread (or from
  // ProbeOnce's caller; with a probe_timeout configured, from a short-lived
  // probe thread); must be safe to call concurrently with whatever else
  // touches the site — wrap sites in mdbs::MdbsAgent for that.
  using ProbeFn = std::function<double()>;

  ContentionTracker(ContentionTrackerConfig config, ProbeFn probe,
                    LatencyHistogram* probe_latency = nullptr);
  ~ContentionTracker();

  ContentionTracker(const ContentionTracker&) = delete;
  ContentionTracker& operator=(const ContentionTracker&) = delete;

  // Starts / stops the background prober (no-ops when probe_interval is 0
  // or the thread is already in the requested state). The thread probes
  // once immediately, then every probe_interval. Start and Stop may race
  // freely from any threads: each Start stamps a new generation, and a loop
  // exits as soon as its generation is superseded, so a Start landing in the
  // middle of a Stop can neither resurrect the old loop nor deadlock the
  // join (it spawns a fresh loop that the stopper does not wait for).
  void Start();
  void Stop();

  // One synchronous probe; returns false on probe failure (a non-finite or
  // negative cost, a thrown exception, a deadline overrun, or suppression by
  // an open circuit breaker).
  bool ProbeOnce();

  // Current cached reading with staleness evaluated against the clock now.
  ProbeReading Current() const;

  // Installs the probing-cost → state mapping (normally a model's
  // ContentionStates::StateOf). Re-maps the cached reading immediately.
  void SetStateMapper(std::function<int(double)> mapper);

  // Installs the state partition's internal boundaries (ascending) so
  // BoundaryDistance can report how close the published probing cost sits to
  // a state edge. Normally set alongside SetStateMapper from the same model.
  void SetStateBoundaries(std::vector<double> boundaries);

  // Distance from the published probing cost to the nearest partition
  // boundary. Returns false when there is no reading or no boundaries are
  // installed; otherwise writes the absolute distance and the boundary it is
  // measured against. Drives the near_boundary_sites gauge: a site whose
  // probe hovers inside the soft-membership band is one whose point
  // estimates are least trustworthy.
  bool BoundaryDistance(double* distance, double* boundary) const;

  // Invoked (outside the tracker's internal locks) whenever a probe or remap
  // publishes a different state than the previous reading's. old_state is -1
  // for the first reading. Used by the estimation service to drop cached
  // estimates for this site the moment its contention state transitions.
  using StateChangeFn = std::function<void(int old_state, int new_state)>;
  void SetStateChangeCallback(StateChangeFn callback);

  // Monotone version of the published (state, staleness, degraded) triple:
  // bumped when a probe or remap changes the mapped state, when the reading
  // crosses the TTL in either direction, and when the circuit breaker moves
  // across the closed boundary (the degraded flag flipped). A cached estimate recorded at version v is
  // state-consistent while state_version() == v still holds. Staleness
  // transitions are detected when someone evaluates freshness (Current() or
  // the background loop after a failed probe), so the bump lags a quiet
  // fresh→stale crossing by at most one probe interval.
  uint64_t state_version() const {
    return state_version_.load(std::memory_order_acquire);
  }

  // The most recently published probing cost, without taking the tracker
  // lock; NaN until the first successful probe. Paired with state_version()
  // this is the cache's lock-free validity probe: a cached estimate is
  // value-correct while the published cost stays inside its state's
  // partition interval under the model that priced it.
  double published_probing_cost() const;

  // The cadence the background loop is currently probing at (the
  // probe_interval_ns gauge). Equals config probe_interval until the
  // adaptive loop first adjusts it.
  std::chrono::nanoseconds current_probe_interval() const {
    return std::chrono::nanoseconds(
        current_interval_ns_.load(std::memory_order_relaxed));
  }

  // The adaptive-cadence step, exposed for direct testing: halve on a state
  // change, grow by a quarter when stable, clamped to [min, max].
  static std::chrono::nanoseconds AdaptInterval(
      std::chrono::nanoseconds current, bool state_changed,
      std::chrono::nanoseconds min_interval,
      std::chrono::nanoseconds max_interval);

  uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }
  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  // Successful probes whose reading was discarded because a newer probe
  // published first (out-of-order completion).
  uint64_t discarded() const {
    return discarded_.load(std::memory_order_relaxed);
  }
  // Probes abandoned past the probe_timeout deadline (a subset of failures).
  uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  // Probe attempts suppressed by an open circuit breaker (not failures: the
  // probe never ran).
  uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }
  // Failed probes since the last success (what the retry backoff and the
  // breaker key off).
  int consecutive_failures() const {
    return breaker_.consecutive_failures();
  }

  // The probe circuit breaker (always present; disabled unless the config
  // sets a failure threshold). Lock-free state reads.
  const CircuitBreaker& breaker() const { return breaker_; }
  bool degraded() const { return breaker_.degraded(); }

  const std::string& site() const { return config_.site; }

 private:
  // Loops until `generation` is superseded by a newer Start/Stop.
  void RunLoop(uint64_t generation);

  // Runs the probe with deadline and exception armor; true iff the probe
  // returned (an unvalidated) *cost in time.
  bool RunProbe(double* cost);

  // Publishes a degraded-flag flip (version bump + state-change callback)
  // when the breaker moved across the closed boundary.
  void NotifyDegradedTransition(bool was_degraded);

  const ContentionTrackerConfig config_;
  const ProbeFn probe_;
  LatencyHistogram* const probe_latency_;  // may be null

  mutable std::mutex mutex_;  // guards reading_ + mapper_ + callback
  ProbeReading reading_;
  Clock::TimePoint reading_at_{};
  std::function<int(double)> mapper_;
  std::vector<double> boundaries_;  // state partition, ascending
  StateChangeFn state_change_;
  // The staleness last folded into state_version_ (see Current()); mutable
  // because Current() publishes the transition it computes.
  mutable bool published_stale_ = false;

  // Lock-free mirrors of the published reading, written under mutex_ but
  // readable without it — the estimate cache's hit path must not contend on
  // the tracker lock. state_version_ is mutable for the same reason
  // published_stale_ is.
  mutable std::atomic<uint64_t> state_version_{0};
  std::atomic<uint64_t> published_cost_bits_;
  std::atomic<int64_t> current_interval_ns_;

  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> discarded_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> suppressed_{0};
  CircuitBreaker breaker_;
  // Probe-start tickets; compared against reading_.sequence at publish time.
  std::atomic<uint64_t> next_sequence_{0};

  std::mutex thread_mutex_;  // guards thread_ / stop_ / generation_
  std::condition_variable stop_cv_;
  bool stop_ = false;
  uint64_t generation_ = 0;  // bumped by every Start and Stop
  std::thread thread_;
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_CONTENTION_TRACKER_H_
