// Per-site circuit breaker over consecutive probe failures.
//
// The paper's premise is that local sites are autonomous and opaque: the
// only way the MDBS observes a site is by running probing/sample queries
// against it, and a loaded or dead site can fail those indefinitely.
// Hammering such a site with more probes makes the overload worse and burns
// prober time that healthy sites need. The breaker is the standard remedy:
//
//   closed ──threshold consecutive failures──▶ open
//     ▲                                         │ open_duration elapses
//     │ trial succeeds                          ▼
//     └──────────────── half-open ◀─────────────┘
//                          │ trial fails
//                          └──────▶ open (timer restarts)
//
// While the breaker is not closed the site is *degraded*: probes are
// suppressed (except the half-open trial), estimates keep serving from the
// last known contention state, and responses carry `degraded=true` so
// callers can widen error bars or prefer another placement.
//
// Thread safety: transitions serialize on an internal mutex; `state()` /
// `degraded()` are single relaxed atomic loads, safe on estimate hot paths.

#ifndef MSCM_RUNTIME_CIRCUIT_BREAKER_H_
#define MSCM_RUNTIME_CIRCUIT_BREAKER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "runtime/clock.h"

namespace mscm::runtime {

struct CircuitBreakerConfig {
  // Consecutive failures that open the breaker; 0 disables it entirely
  // (always closed, every request admitted).
  int failure_threshold = 0;
  // How long an open breaker rejects requests before admitting a half-open
  // trial. Measured on the injected clock.
  std::chrono::nanoseconds open_duration = std::chrono::seconds(5);
  // Consecutive trial successes required in half-open before closing.
  int half_open_successes = 1;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  // `clock` must outlive the breaker; null falls back to Clock::System().
  explicit CircuitBreaker(CircuitBreakerConfig config, Clock* clock = nullptr);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  bool enabled() const { return config_.failure_threshold > 0; }

  // Whether the caller may issue the guarded request now. Closed: always.
  // Open: false until open_duration has elapsed, at which point the breaker
  // moves to half-open and admits exactly one trial (concurrent callers keep
  // getting false until that trial reports its outcome).
  bool AllowRequest();

  // Outcome of an admitted request. A success in half-open (after
  // half_open_successes trials) closes the breaker; a failure in half-open
  // reopens it with a fresh timer; failure_threshold consecutive failures
  // while closed open it.
  void RecordSuccess();
  void RecordFailure();

  State state() const {
    return static_cast<State>(state_.load(std::memory_order_acquire));
  }
  // Anything but closed: the site is serving from its last known state.
  bool degraded() const { return state() != State::kClosed; }

  // Transitions into open over the breaker's lifetime (initial opens and
  // half-open reopens alike).
  uint64_t opens() const { return opens_.load(std::memory_order_relaxed); }

  int consecutive_failures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }

 private:
  void TransitionLocked(State next);

  const CircuitBreakerConfig config_;
  Clock* const clock_;

  std::mutex mutex_;
  Clock::TimePoint open_until_{};  // valid while open
  bool trial_in_flight_ = false;   // half-open admits one trial at a time
  int trial_successes_ = 0;        // consecutive successes this half-open

  std::atomic<int> state_{static_cast<int>(State::kClosed)};
  std::atomic<int> consecutive_failures_{0};
  std::atomic<uint64_t> opens_{0};
};

const char* ToString(CircuitBreaker::State s);

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_CIRCUIT_BREAKER_H_
