#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace mscm::runtime {

ThreadPool::ThreadPool(int num_threads) {
  size_t n = 0;
  if (num_threads < 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  } else {
    n = static_cast<size_t>(num_threads);
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, size_t min_grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  min_grain = std::max<size_t>(1, min_grain);
  const size_t max_chunks = workers_.empty() ? 1 : workers_.size() + 1;
  size_t chunks = std::min(max_chunks, (n + min_grain - 1) / min_grain);
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  const size_t grain = (n + chunks - 1) / chunks;
  chunks = (n + grain - 1) / grain;  // re-derive: last chunk may vanish

  std::atomic<size_t> remaining{chunks - 1};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (size_t c = 1; c < chunks; ++c) {
    const size_t begin = c * grain;
    const size_t end = std::min(n, begin + grain);
    Submit([&, begin, end] {
      body(begin, end);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  // The caller works the first chunk instead of just blocking.
  body(0, std::min(n, grain));

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace mscm::runtime
