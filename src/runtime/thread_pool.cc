#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "runtime/rmw_probe.h"

namespace mscm::runtime {

ThreadPool::ThreadPool(int num_threads) {
  size_t n = 0;
  if (num_threads < 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  } else {
    n = static_cast<size_t>(num_threads);
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, size_t min_grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  min_grain = std::max<size_t>(1, min_grain);
  const size_t max_chunks = workers_.empty() ? 1 : workers_.size() + 1;
  size_t chunks = std::min(max_chunks, (n + min_grain - 1) / min_grain);
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  const size_t grain = (n + chunks - 1) / chunks;
  chunks = (n + grain - 1) / grain;  // re-derive: last chunk may vanish

  // Completion state lives on the heap, shared by every submitted chunk:
  // a worker's final fetch_sub is what releases the waiting caller, so the
  // caller can return (and a stack-local mutex/cv would be destroyed) while
  // that worker is still between its decrement and its notify. Each task's
  // shared_ptr keeps the state alive until the notify completes. The
  // refcount traffic is real shared RMWs, amortized over a whole chunk.
  struct Completion {
    std::atomic<size_t> remaining;
    std::mutex mutex;
    std::condition_variable cv;
    explicit Completion(size_t n) : remaining(n) {}
  };
  auto done = std::make_shared<Completion>(chunks - 1);
  RmwProbe::Count(chunks);  // one refcount bump per task + caller's release

  for (size_t c = 1; c < chunks; ++c) {
    const size_t begin = c * grain;
    const size_t end = std::min(n, begin + grain);
    Submit([&body, done, begin, end] {
      body(begin, end);
      if (done->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Taking the mutex before notifying orders the notify after the
        // caller's wait registration; the shared_ptr keeps `done` valid
        // even if the caller has already observed remaining == 0 and left.
        std::lock_guard<std::mutex> lock(done->mutex);
        done->cv.notify_one();
      }
    });
  }
  // The caller works the first chunk instead of just blocking.
  body(0, std::min(n, grain));

  std::unique_lock<std::mutex> lock(done->mutex);
  done->cv.wait(lock, [&] {
    return done->remaining.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace mscm::runtime
