#include "runtime/snapshot_catalog.h"

#include <mutex>
#include <utility>

namespace mscm::runtime {

void SnapshotCatalog::Register(const std::string& site, core::CostModel model) {
  Update([&site, &model](core::GlobalCatalog& catalog) {
    catalog.Register(site, std::move(model));
  });
}

void SnapshotCatalog::Update(
    const std::function<void(core::GlobalCatalog&)>& mutate) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // Copy the published catalog, edit the copy, publish. Readers holding the
  // old snapshot keep it alive through their shared_ptr.
  auto next = std::make_shared<core::GlobalCatalog>(*current_.load());
  mutate(*next);
  // Stamp the snapshot with the version it will be published under, so any
  // reader holding it can tell which epoch priced its estimates.
  const uint64_t next_version = version_.load(std::memory_order_relaxed) + 1;
  next->set_revision(next_version);
  current_.Publish(Snapshot(std::move(next)));
  version_.store(next_version, std::memory_order_relaxed);
}

void SnapshotCatalog::UpdatePreservingRevision(
    const std::function<void(core::GlobalCatalog&)>& mutate) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  auto next = std::make_shared<core::GlobalCatalog>(*current_.load());
  mutate(*next);
  // Same revision as the snapshot being replaced: readers (and cache
  // entries) cannot tell the difference except through the rows the caller
  // swapped — which the caller invalidates per (site, state).
  next->set_revision(version_.load(std::memory_order_relaxed));
  current_.Publish(Snapshot(std::move(next)));
}

}  // namespace mscm::runtime
