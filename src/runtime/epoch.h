// Epoch-based reclamation for the estimate hot path: readers publish an
// epoch into a per-thread slot and then dereference raw pointers; writers
// swap the pointer, bump the global epoch, and retire the old object until
// every in-flight reader has moved past it. A cached or single estimate
// therefore pins the catalog / tracker-map / stale-set snapshots with two
// plain seq_cst *stores* to its own slot — zero shared atomic RMWs — where
// the shared_ptr path paid two refcount RMWs per snapshot per request.
//
// Protocol (all seq_cst, deliberately: the reader-publish / writer-scan
// pair is a Dekker-style flag handshake, and seq_cst keeps it both correct
// and visible to ThreadSanitizer without annotations):
//
//   reader (EpochGuard):   e = global_epoch; slot[i] = e; ... ptr.load() ...
//                          slot[i] = 0 on release (0 = idle)
//   writer (Publish):      ptr.store(next); stamp = ++global_epoch;
//                          retire(old, stamp)
//   reclaim:               free a retired record iff every non-idle slot
//                          epoch >= its stamp
//
// Why that is safe: a reader pinned with epoch e < stamp may have loaded
// the pointer before the writer's swap, so it blocks the record. A reader
// pinned with e >= stamp read the global epoch *after* the writer's
// increment (seq_cst makes the increment and the pointer store globally
// ordered), so its pointer loads observe the new value. Fresh pins always
// read the current global epoch, which is >= every stamp already retired —
// new readers can never resurrect an old record.
//
// Threads without a registry slot (beyond ThreadRegistry::kMaxSlots) fall
// back to holding a shared_mutex in shared mode for the guard's lifetime;
// Reclaim try_locks it exclusively (blocking only at domain drain), so the
// overflow path is correct but pays counted RMWs.
//
// Retired objects are kept alive by type-erased shared_ptr keepalives, so
// the domain composes with every snapshot the runtime already publishes as
// shared_ptr (catalog, tracker map, stale-key set): cold readers keep using
// AtomicSharedPtr::load(), hot readers use the raw epoch read, and the
// object dies only when both the keepalive chain and the grace period
// agree.

#ifndef MSCM_RUNTIME_EPOCH_H_
#define MSCM_RUNTIME_EPOCH_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "runtime/atomic_shared_ptr.h"
#include "runtime/rmw_probe.h"
#include "runtime/thread_registry.h"

namespace mscm::runtime {

class EpochGuard;

class EpochDomain {
 public:
  // The process-wide domain every EpochPublished slot and EpochGuard uses.
  // Leaked at shutdown (readers in late-exiting threads must never observe
  // a destroyed domain); retired records themselves are drained by each
  // EpochPublished destructor, so nothing user-visible leaks.
  static EpochDomain& Global();

  EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // Hands `keepalive` to the domain, stamped with a fresh epoch; it is
  // destroyed once every reader pinned before the stamp has released.
  // Opportunistically reclaims.
  void Retire(std::shared_ptr<const void> keepalive);

  // Frees every retired record whose grace period has passed. With
  // `wait_for_readers`, blocks until every reader pinned before the records
  // already retired at entry has released — slotted readers are waited out
  // by rescanning, overflow (slotless) readers by a blocking exclusive
  // acquisition — instead of skipping reclamation. Used when draining a
  // domain whose objects must not outlive the caller (EpochPublished
  // destructor); records retired concurrently after entry are not waited
  // for.
  void Reclaim(bool wait_for_readers = false);

  // Retired records not yet freed (diagnostics / tests).
  size_t RetiredCount() const;

 private:
  friend class EpochGuard;

  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> epoch{0};  // 0 = idle
  };

  struct Retired {
    uint64_t stamp = 0;
    std::shared_ptr<const void> keepalive;
  };

  std::atomic<uint64_t> global_epoch_{1};
  ReaderSlot slots_[ThreadRegistry::kMaxSlots];
  // Overflow readers (no registry slot) hold this shared for the guard's
  // lifetime; Reclaim acquires it exclusively to rule them out.
  mutable std::shared_mutex overflow_readers_;
  mutable std::mutex retired_mutex_;
  std::vector<Retired> retired_;
};

// RAII reader pin. Re-entrant per thread: nested guards piggyback on the
// outermost pin. Pinning is two seq_cst stores to the thread's own slot —
// no shared RMW (overflow threads without a slot pay a counted
// shared_mutex acquisition instead).
class EpochGuard {
 public:
  EpochGuard();
  ~EpochGuard();

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  int slot_;
  bool outermost_;
};

// A published pointer with two read paths: a raw epoch-protected load for
// the hot path (zero shared RMWs under an EpochGuard) and a shared_ptr
// load for cold callers that need to hold the snapshot past any guard.
// Publish() is writer-serialized by the caller (every publisher in this
// codebase already holds a writer/control mutex).
template <typename T>
class EpochPublished {
 public:
  EpochPublished() : live_(nullptr) {}

  explicit EpochPublished(std::shared_ptr<const T> initial)
      : shared_(initial), live_(initial.get()), keepalive_(std::move(initial)) {}

  EpochPublished(const EpochPublished&) = delete;
  EpochPublished& operator=(const EpochPublished&) = delete;

  ~EpochPublished() {
    // Unpublish and drain: after this, no reader of *this* slot can be
    // in-flight (callers destroy readers first), but the domain may still
    // hold our previous values — retire the final one and wait out the
    // grace period (including readers pinned on *other* published slots,
    // whose pins block the whole domain) so keepalives never outlive the
    // slot's owner.
    live_.store(nullptr, std::memory_order_seq_cst);
    if (keepalive_) {
      EpochDomain::Global().Retire(std::move(keepalive_));
    }
    EpochDomain::Global().Reclaim(/*wait_for_readers=*/true);
  }

  // Hot read: raw pointer, valid while `guard` is alive. Null only if
  // nothing was ever published.
  const T* Read(const EpochGuard& guard) const {
    (void)guard;
    return live_.load(std::memory_order_seq_cst);
  }

  // Cold read: owning snapshot, valid past any guard (refcount RMWs).
  std::shared_ptr<const T> load() const { return shared_.load(); }

  // Publishes `next` and retires the previous value into the epoch domain.
  // Caller serializes writers.
  void Publish(std::shared_ptr<const T> next) {
    const T* raw = next.get();
    shared_.store(next);
    live_.store(raw, std::memory_order_seq_cst);
    std::shared_ptr<const T> old = std::exchange(keepalive_, std::move(next));
    if (old) {
      EpochDomain::Global().Retire(
          std::shared_ptr<const void>(std::move(old)));
    }
  }

 private:
  AtomicSharedPtr<const T> shared_;  // cold path + TSan-clean fallback
  std::atomic<const T*> live_;       // hot path, epoch-protected
  // The currently published value, pinned so `live_` stays valid between
  // Publish calls. Guarded by the caller's writer serialization.
  std::shared_ptr<const T> keepalive_;
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_EPOCH_H_
