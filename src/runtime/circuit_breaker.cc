#include "runtime/circuit_breaker.h"

namespace mscm::runtime {

const char* ToString(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config, Clock* clock)
    : config_(config), clock_(clock != nullptr ? clock : Clock::System()) {}

void CircuitBreaker::TransitionLocked(State next) {
  if (next == State::kOpen && state() != State::kOpen) {
    opens_.fetch_add(1, std::memory_order_relaxed);
    open_until_ = clock_->Now() + std::chrono::duration_cast<Clock::Duration>(
                                      config_.open_duration);
  }
  state_.store(static_cast<int>(next), std::memory_order_release);
}

bool CircuitBreaker::AllowRequest() {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state()) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_->Now() < open_until_) return false;
      TransitionLocked(State::kHalfOpen);
      trial_successes_ = 0;
      trial_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      // One trial at a time: concurrent callers wait for its outcome.
      if (trial_in_flight_) return false;
      trial_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_.store(0, std::memory_order_relaxed);
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (state() == State::kHalfOpen) {
    trial_in_flight_ = false;
    if (++trial_successes_ >= config_.half_open_successes) {
      TransitionLocked(State::kClosed);
    }
  }
}

void CircuitBreaker::RecordFailure() {
  const int consecutive =
      consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state()) {
    case State::kClosed:
      if (consecutive >= config_.failure_threshold) {
        TransitionLocked(State::kOpen);
      }
      break;
    case State::kHalfOpen:
      // The trial failed: the site is still sick, restart the open timer.
      trial_in_flight_ = false;
      TransitionLocked(State::kOpen);
      break;
    case State::kOpen:
      break;  // a straggling failure while already open changes nothing
  }
}

}  // namespace mscm::runtime
