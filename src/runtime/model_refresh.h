// Drift-triggered model refresh for the online estimation service.
//
// The paper's maintenance discussion (§2) requires re-invoking the sampling
// method "periodically or whenever a significant change for the factors
// occurs". PR 1's runtime could only serve whatever was registered at
// startup; this daemon closes the loop. Serving threads feed it the
// observed cost of queries the optimizer priced anyway
// (`ReportObserved`), and per (site, class) key it tracks two signals:
//
//  * an EWMA of the relative estimation error |est - obs| / obs — the
//    occasionally-changing-factor signal (the model is simply wrong now);
//  * the distribution of recent contention states against a baseline taken
//    just after the model was published — the contention-drift signal (the
//    environment left the region the partition was derived for, even if
//    the estimates still look fine where they are being asked).
//
// When either trips, the key walks a small state machine:
//
//    fresh ──trip──▶ drifting ──task starts──▶ refreshing
//      ▲                                        │      │
//      └──────── success (atomic swap) ─────────┘      failure
//                                                      ▼
//              retry after backoff  ◀──────────── backed-off
//
// A refresh re-samples through the key's ObservationSource and re-derives
// via core::RederiveModel on the service's worker pool, warm-starting from
// the feedback observations already collected. On success the new model is
// published through the service's snapshot catalog (one atomic swap; the
// tracker's state mapper is rewired in the same control-plane critical
// section). On failure the old model keeps serving — flagged `stale_model`
// in responses and Stats() — and retries back off exponentially: attempt n
// waits initial_backoff * multiplier^(n-1), capped at max_backoff, with the
// exponent frozen after max_attempts (bounded retry: a permanently failing
// source throttles to one attempt per max_backoff, it never spins).
// At most one refresh per key is ever in flight (per-key guard).
//
// Failure armor: an observation source that *throws* (instead of returning
// too few samples) is caught and routed into the same backed-off path — an
// exception can never escape a worker-pool task. And while a site's probe
// circuit breaker is not closed, refreshes for the site are suspended:
// sampling queries would fail the same way the probes are failing, and the
// signals keep accumulating so the key re-trips once the site recovers.

#ifndef MSCM_RUNTIME_MODEL_REFRESH_H_
#define MSCM_RUNTIME_MODEL_REFRESH_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/maintenance.h"
#include "core/observation.h"
#include "core/observation_source.h"
#include "core/query_class.h"
#include "runtime/atomic_shared_ptr.h"
#include "runtime/clock.h"
#include "runtime/estimation_service.h"

namespace mscm::runtime {

struct ModelRefreshConfig {
  // EWMA smoothing for the relative estimation error.
  double ewma_alpha = 0.2;
  // Refresh when the error EWMA exceeds this (0.75 = estimates off by 75%).
  double error_threshold = 0.75;
  // Refresh when the L1 distance between the recent and baseline state
  // distributions exceeds this (0 = identical, 1 = disjoint).
  double drift_threshold = 0.6;
  // Reports before either signal is judged (and the size of the baseline
  // state histogram captured after each publication).
  size_t min_reports = 32;
  // Rolling window of recent states for the drift histogram.
  size_t drift_window = 64;
  // Feedback observations kept per key for warm-starting a re-derivation.
  size_t max_recent_observations = 256;
  // Retry policy for failed re-derivations.
  int max_attempts = 3;
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(100);
  double backoff_multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(10);
  // Quiet period after a successful refresh before the key can trip again.
  std::chrono::nanoseconds refresh_cooldown = std::chrono::seconds(1);
  // How to re-derive (sampling + pipeline options, warm-start caps).
  core::RederiveOptions rederive;
  Clock* clock = Clock::System();
};

// The refresh lifecycle of one (site, class) key.
enum class RefreshState {
  kFresh,       // serving a model no signal has challenged
  kDrifting,    // a signal tripped; refresh queued but not yet running
  kRefreshing,  // re-derivation in flight on the worker pool
  kBackedOff,   // last re-derivation failed; waiting out the backoff
};

const char* ToString(RefreshState s);

// Monotonic counters over the daemon's lifetime.
struct ModelRefreshStats {
  uint64_t reports = 0;              // ReportObserved calls accepted
  uint64_t ignored_reports = 0;      // unwatched key / unpriceable feedback
  uint64_t error_trips = 0;          // EWMA threshold crossings that scheduled
  uint64_t drift_trips = 0;          // distribution-drift crossings that scheduled
  uint64_t refreshes_scheduled = 0;  // tasks handed to the pool
  uint64_t refreshes_succeeded = 0;  // models re-derived and swapped in
  uint64_t refresh_failures = 0;     // re-derivations that returned no model
  uint64_t refreshes_suspended = 0;  // trips/tasks held: site breaker not closed
  uint64_t refresh_exceptions = 0;   // re-derivations that threw (subset of failures)
  // Refresh tasks whose key was unwatched (site retiring) before they could
  // publish — the re-derivation result, if any, was dropped on the floor.
  uint64_t refreshes_abandoned = 0;

  std::string ToString() const;
};

// Point-in-time view of one key (introspection / tests).
struct RefreshKeyStatus {
  bool watched = false;
  RefreshState state = RefreshState::kFresh;
  double ewma_rel_error = 0.0;
  double drift_distance = 0.0;  // recent-vs-baseline L1, 0 until both exist
  size_t reports = 0;           // since last publication
  int attempts = 0;             // consecutive failed re-derivations
};

class ModelRefreshDaemon {
 public:
  // `service` must outlive the daemon. Refresh tasks run on
  // service->worker_pool(); with zero workers they run inline inside the
  // ReportObserved that tripped them (deterministic — the test mode).
  explicit ModelRefreshDaemon(EstimationService* service,
                              ModelRefreshConfig config = {});
  // Blocks until every in-flight refresh task has finished.
  ~ModelRefreshDaemon();

  ModelRefreshDaemon(const ModelRefreshDaemon&) = delete;
  ModelRefreshDaemon& operator=(const ModelRefreshDaemon&) = delete;

  // Puts (site, class) under maintenance. `source` is not owned, must
  // outlive the daemon, and is only used by refresh tasks — at most one per
  // key at a time; give each key its own source unless the source is
  // thread-safe. Re-watching a key replaces its source and resets signals.
  void Watch(const std::string& site, core::QueryClassId class_id,
             core::ObservationSource* source);

  // Takes (site, class) out of maintenance: the key stops accepting
  // reports, an in-flight refresh for it abandons instead of publishing,
  // and the key's stale-model flag is cleared (nothing will ever refresh it
  // now). Returns immediately — it does not wait for an in-flight task;
  // the destructor still drains. Unknown keys are a no-op.
  void Unwatch(const std::string& site, core::QueryClassId class_id);

  // Unwatches every class of `site` — the refresh half of site retirement
  // (see EstimationService::UnregisterSite and DESIGN §7).
  void UnwatchSite(const std::string& site);

  // Feedback from the serving path: a query of `class_id` with `features`
  // ran at `site` and took `observed_cost` seconds. The daemon prices the
  // same request through the service to obtain the current model's estimate
  // and probe reading, updates the key's signals, and schedules a refresh
  // when a threshold trips. Cheap (one lock-free estimate + one short
  // per-key critical section) and safe from any thread.
  void ReportObserved(const std::string& site, core::QueryClassId class_id,
                      const std::vector<double>& features,
                      double observed_cost);

  // Forces the slow tier for (site, class): schedules a full re-derivation
  // immediately, bypassing the signal thresholds (the caller — typically the
  // AdaptationController when its fast RLS tier stalls or its covariance
  // blows up — has its own evidence). Respects the same safety rails as a
  // signal trip: at most one refresh in flight per key, backoff windows, and
  // degraded-site suspension. Returns true when a refresh was scheduled.
  bool RequestRefresh(const std::string& site, core::QueryClassId class_id);

  RefreshKeyStatus Status(const std::string& site,
                          core::QueryClassId class_id) const;
  ModelRefreshStats Stats() const;

 private:
  struct KeyEntry {
    std::string site;
    core::QueryClassId class_id;
    core::ObservationSource* source = nullptr;

    mutable std::mutex mutex;  // guards everything below
    RefreshState state = RefreshState::kFresh;
    bool in_flight = false;    // per-key concurrent-refresh guard
    // Set by Unwatch after the entry leaves the key map: reports are
    // ignored and an in-flight refresh must not publish (a re-derivation
    // finishing after UnregisterSite would resurrect the site's model).
    bool retired = false;
    int attempts = 0;          // consecutive failures
    Clock::TimePoint next_attempt_at{};  // no scheduling before this

    // Signals (reset on every publication).
    size_t reports = 0;
    double ewma_rel_error = 0.0;
    bool ewma_primed = false;
    std::vector<uint64_t> baseline_hist;  // first min_reports states
    uint64_t baseline_total = 0;
    std::deque<int> recent_states;        // rolling drift_window
    std::vector<uint64_t> recent_hist;
    std::deque<core::Observation> recent_obs;  // warm-start material
  };
  using KeyMap =
      std::map<std::pair<std::string, int>, std::shared_ptr<KeyEntry>>;
  using KeyMapSnapshot = std::shared_ptr<const KeyMap>;

  std::shared_ptr<KeyEntry> FindEntry(const std::string& site,
                                      core::QueryClassId class_id) const;

  // Updates signals under entry->mutex; returns true when a refresh should
  // be scheduled (and marks the entry drifting + in flight).
  bool UpdateSignalsAndMaybeTrip(KeyEntry& entry, double estimated,
                                 double observed, int state);

  // L1 distance between the normalized baseline and recent histograms.
  static double DriftDistance(const KeyEntry& entry);

  // Resets the trip signals after a publication (baseline restarts).
  static void ResetSignals(KeyEntry& entry);

  void RunRefresh(std::shared_ptr<KeyEntry> entry);

  EstimationService* const service_;
  const ModelRefreshConfig config_;

  std::mutex keys_mutex_;  // writers (Watch); readers load the snapshot
  AtomicSharedPtr<const KeyMap> keys_;

  // In-flight task accounting so the destructor can drain.
  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  size_t pending_ = 0;

  std::atomic<uint64_t> reports_{0};
  std::atomic<uint64_t> ignored_reports_{0};
  std::atomic<uint64_t> error_trips_{0};
  std::atomic<uint64_t> drift_trips_{0};
  std::atomic<uint64_t> refreshes_scheduled_{0};
  std::atomic<uint64_t> refreshes_succeeded_{0};
  std::atomic<uint64_t> refresh_failures_{0};
  std::atomic<uint64_t> refreshes_suspended_{0};
  std::atomic<uint64_t> refresh_exceptions_{0};
  std::atomic<uint64_t> refreshes_abandoned_{0};
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_MODEL_REFRESH_H_
