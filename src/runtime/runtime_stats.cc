#include "runtime/runtime_stats.h"

#include <cmath>

#include "common/str_util.h"
#include "runtime/rmw_probe.h"

namespace mscm::runtime {

namespace {

// Index of the power-of-two bucket holding `ns`.
int BucketOf(int64_t ns) {
  if (ns <= 1) return 0;
  const int bit = 63 - __builtin_clzll(static_cast<uint64_t>(ns));
  return bit >= LatencyHistogram::kNumBuckets
             ? LatencyHistogram::kNumBuckets - 1
             : bit;
}

double BucketMidSeconds(int bucket) {
  // Geometric midpoint of [2^b, 2^(b+1)) ns.
  return std::ldexp(1.0, bucket) * std::sqrt(2.0) * 1e-9;
}

// Single-writer increment: the owning thread is the only writer, so a plain
// load+store is race-free and costs no atomic RMW instruction; the atomic
// type keeps concurrent aggregator loads well-defined.
inline void StoreAdd(std::atomic<uint64_t>& field, uint64_t n) {
  field.store(field.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
}

}  // namespace

LatencyHistogram::~LatencyHistogram() {
  for (auto& slot : stripes_) {
    delete slot.load(std::memory_order_acquire);
  }
}

void LatencyHistogram::Record(std::chrono::nanoseconds latency) {
  RecordN(latency, 1);
}

void LatencyHistogram::RecordN(std::chrono::nanoseconds latency, uint64_t n) {
  if (n == 0) return;
  const int bucket = BucketOf(latency.count());
  const uint64_t dt =
      n * static_cast<uint64_t>(std::max<int64_t>(0, latency.count()));
  const int slot = ThreadRegistry::CurrentSlot();
  if (slot < 0) {
    RmwProbe::Count(2);
    overflow_.buckets[bucket].fetch_add(n, std::memory_order_relaxed);
    overflow_.total_ns.fetch_add(dt, std::memory_order_relaxed);
    return;
  }
  Stripe* stripe = stripes_[slot].load(std::memory_order_acquire);
  if (stripe == nullptr) {
    stripe = new Stripe();
    stripes_[slot].store(stripe, std::memory_order_release);
  }
  StoreAdd(stripe->buckets[bucket], n);
  StoreAdd(stripe->total_ns, dt);
}

uint64_t LatencyHistogram::Aggregate(uint64_t buckets[kNumBuckets],
                                     uint64_t* total_ns) const {
  for (int b = 0; b < kNumBuckets; ++b) buckets[b] = 0;
  uint64_t total = 0;
  auto fold = [&](const Stripe& stripe) {
    for (int b = 0; b < kNumBuckets; ++b) {
      buckets[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
    total += stripe.total_ns.load(std::memory_order_relaxed);
  };
  for (const auto& slot : stripes_) {
    if (const Stripe* stripe = slot.load(std::memory_order_acquire)) {
      fold(*stripe);
    }
  }
  fold(overflow_);
  if (total_ns != nullptr) *total_ns = total;
  uint64_t count = 0;
  for (int b = 0; b < kNumBuckets; ++b) count += buckets[b];
  return count;
}

double LatencyHistogram::RankSeconds(const uint64_t buckets[kNumBuckets],
                                     uint64_t count, double p) {
  if (count == 0) return 0.0;
  int highest = 0;
  for (int b = kNumBuckets - 1; b >= 0; --b) {
    if (buckets[b] > 0) {
      highest = b;
      break;
    }
  }
  // p >= 1.0 means "the largest sample we saw": pin it to the highest
  // non-empty bucket rather than trusting rank arithmetic at the edge.
  if (p >= 1.0) return BucketMidSeconds(highest);
  const double clamped = p < 0.0 ? 0.0 : p;
  // Rank against the count summed from these same buckets, so the walk
  // always terminates inside them (no separately-loaded count to tear).
  const uint64_t rank =
      static_cast<uint64_t>(clamped * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) return BucketMidSeconds(b);
  }
  return BucketMidSeconds(highest);
}

double LatencyHistogram::PercentileSeconds(double p) const {
  uint64_t buckets[kNumBuckets];
  const uint64_t count = Aggregate(buckets, nullptr);
  return RankSeconds(buckets, count, p);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  // One aggregation pass feeds every derived statistic, so count, mean and
  // percentiles in a snapshot are mutually consistent.
  uint64_t buckets[kNumBuckets];
  uint64_t total_ns = 0;
  const uint64_t count = Aggregate(buckets, &total_ns);
  Snapshot snap;
  snap.count = count;
  if (count == 0) return snap;
  snap.mean_seconds =
      1e-9 * static_cast<double>(total_ns) / static_cast<double>(count);
  snap.p50_seconds = RankSeconds(buckets, count, 0.50);
  snap.p90_seconds = RankSeconds(buckets, count, 0.90);
  snap.p99_seconds = RankSeconds(buckets, count, 0.99);
  for (int b = kNumBuckets - 1; b >= 0; --b) {
    if (buckets[b] > 0) {
      snap.max_bucket_seconds = std::ldexp(1.0, b + 1) * 1e-9;
      break;
    }
  }
  return snap;
}

void LatencyHistogram::Reset() {
  auto zero = [](Stripe& stripe) {
    for (auto& b : stripe.buckets) b.store(0, std::memory_order_relaxed);
    stripe.total_ns.store(0, std::memory_order_relaxed);
  };
  for (auto& slot : stripes_) {
    if (Stripe* stripe = slot.load(std::memory_order_acquire)) zero(*stripe);
  }
  zero(overflow_);
}

std::string LatencyHistogram::Snapshot::ToString() const {
  return Format("n=%llu mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus",
                static_cast<unsigned long long>(count), mean_seconds * 1e6,
                p50_seconds * 1e6, p90_seconds * 1e6, p99_seconds * 1e6);
}

std::string RuntimeStatsSnapshot::ToString() const {
  std::string out = Format(
      "requests=%llu batches=%llu probe_cache{hit=%llu stale=%llu miss=%llu} "
      "estimate_cache{hit=%llu miss=%llu invalidated=%llu} "
      "no_model=%llu invalid_requests=%llu probes=%llu probe_interval=%.3gms "
      "probe_failures=%llu probe_discards=%llu probe_timeouts=%llu "
      "probes_suppressed=%llu breaker_opens=%llu degraded_sites=%llu "
      "degraded_served=%llu "
      "catalog_swaps=%llu adaptations_applied=%llu stale_models=%llu "
      "stale_model_served=%llu "
      "placements=%llu placement_expected_cost_wins=%llu "
      "near_boundary_sites=%llu sites_retired=%llu\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(probe_cache_hits),
      static_cast<unsigned long long>(probe_cache_stale),
      static_cast<unsigned long long>(probe_cache_misses),
      static_cast<unsigned long long>(estimate_cache_hits),
      static_cast<unsigned long long>(estimate_cache_misses),
      static_cast<unsigned long long>(estimate_cache_invalidations),
      static_cast<unsigned long long>(no_model),
      static_cast<unsigned long long>(invalid_requests),
      static_cast<unsigned long long>(probes),
      static_cast<double>(probe_interval_ns) * 1e-6,
      static_cast<unsigned long long>(probe_failures),
      static_cast<unsigned long long>(probe_discards),
      static_cast<unsigned long long>(probe_timeouts),
      static_cast<unsigned long long>(probes_suppressed),
      static_cast<unsigned long long>(breaker_opens),
      static_cast<unsigned long long>(degraded_sites),
      static_cast<unsigned long long>(degraded_served),
      static_cast<unsigned long long>(catalog_swaps),
      static_cast<unsigned long long>(adaptations_applied),
      static_cast<unsigned long long>(stale_models),
      static_cast<unsigned long long>(stale_model_served),
      static_cast<unsigned long long>(placements),
      static_cast<unsigned long long>(placement_expected_cost_wins),
      static_cast<unsigned long long>(near_boundary_sites),
      static_cast<unsigned long long>(sites_retired));
  out += "estimate latency: " + estimate_latency.ToString() + "\n";
  out += "probe latency:    " + probe_latency.ToString();
  return out;
}

const std::vector<StatsCounterField>& StatsCounterFields() {
  using S = RuntimeStatsSnapshot;
  static const std::vector<StatsCounterField>* fields =
      new std::vector<StatsCounterField>{
          {"requests", &S::requests},
          {"batches", &S::batches},
          {"probe_cache_hits", &S::probe_cache_hits},
          {"probe_cache_stale", &S::probe_cache_stale},
          {"probe_cache_misses", &S::probe_cache_misses},
          {"no_model", &S::no_model},
          {"probes", &S::probes},
          {"probe_failures", &S::probe_failures},
          {"probe_discards", &S::probe_discards},
          {"probe_timeouts", &S::probe_timeouts},
          {"probes_suppressed", &S::probes_suppressed},
          {"breaker_opens", &S::breaker_opens},
          {"degraded_sites", &S::degraded_sites},
          {"degraded_served", &S::degraded_served},
          {"invalid_requests", &S::invalid_requests},
          {"catalog_swaps", &S::catalog_swaps},
          {"stale_model_served", &S::stale_model_served},
          {"stale_models", &S::stale_models},
          {"estimate_cache_hits", &S::estimate_cache_hits},
          {"estimate_cache_misses", &S::estimate_cache_misses},
          {"estimate_cache_invalidations", &S::estimate_cache_invalidations},
          {"placements", &S::placements},
          {"placement_expected_cost_wins", &S::placement_expected_cost_wins},
          {"near_boundary_sites", &S::near_boundary_sites},
          {"adaptations_applied", &S::adaptations_applied},
          {"sites_retired", &S::sites_retired},
      };
  return *fields;
}

const std::vector<StatsGaugeField>& StatsGaugeFields() {
  using S = RuntimeStatsSnapshot;
  static const std::vector<StatsGaugeField>* fields =
      new std::vector<StatsGaugeField>{
          {"probe_interval_ns", &S::probe_interval_ns},
      };
  return *fields;
}

const std::vector<StatsHistogramField>& StatsHistogramFields() {
  using S = RuntimeStatsSnapshot;
  static const std::vector<StatsHistogramField>* fields =
      new std::vector<StatsHistogramField>{
          {"estimate_latency", &S::estimate_latency},
          {"probe_latency", &S::probe_latency},
      };
  return *fields;
}

void RuntimeCounters::Shard::Add(std::atomic<uint64_t>& field, uint64_t n) {
  if (shared_writers) {
    RmwProbe::Count();
    field.fetch_add(n, std::memory_order_relaxed);
  } else {
    StoreAdd(field, n);
  }
}

RuntimeCounters::RuntimeCounters() { overflow_.shared_writers = true; }

RuntimeCounters::~RuntimeCounters() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_acquire);
  }
}

RuntimeCounters::Shard& RuntimeCounters::Local() {
  const int slot = ThreadRegistry::CurrentSlot();
  if (slot < 0) return overflow_;
  Shard* shard = slots_[slot].load(std::memory_order_acquire);
  if (shard == nullptr) {
    shard = new Shard();
    slots_[slot].store(shard, std::memory_order_release);
  }
  return *shard;
}

void RuntimeCounters::AggregateInto(RuntimeStatsSnapshot& out) const {
  auto fold = [&out](const Shard& s) {
    const uint64_t cache_hits =
        s.estimate_cache_hits.load(std::memory_order_relaxed);
    // The estimate-cache hit path bumps exactly one counter; a hit is still
    // a served request, so fold it back in here.
    out.estimate_cache_hits += cache_hits;
    out.requests += cache_hits;
    out.estimate_cache_misses +=
        s.estimate_cache_misses.load(std::memory_order_relaxed);
    out.requests += s.requests.load(std::memory_order_relaxed);
    out.batches += s.batches.load(std::memory_order_relaxed);
    out.probe_cache_hits += s.probe_cache_hits.load(std::memory_order_relaxed);
    out.probe_cache_stale += s.probe_cache_stale.load(std::memory_order_relaxed);
    out.probe_cache_misses += s.probe_cache_misses.load(std::memory_order_relaxed);
    out.no_model += s.no_model.load(std::memory_order_relaxed);
    out.probes += s.probes.load(std::memory_order_relaxed);
    out.probe_failures += s.probe_failures.load(std::memory_order_relaxed);
    out.catalog_swaps += s.catalog_swaps.load(std::memory_order_relaxed);
    out.adaptations_applied +=
        s.adaptations_applied.load(std::memory_order_relaxed);
    out.stale_model_served +=
        s.stale_model_served.load(std::memory_order_relaxed);
    out.degraded_served += s.degraded_served.load(std::memory_order_relaxed);
    out.invalid_requests +=
        s.invalid_requests.load(std::memory_order_relaxed);
    out.placements += s.placements.load(std::memory_order_relaxed);
    out.placement_expected_cost_wins +=
        s.placement_expected_cost_wins.load(std::memory_order_relaxed);
  };
  for (const auto& slot : slots_) {
    if (const Shard* shard = slot.load(std::memory_order_acquire)) {
      fold(*shard);
    }
  }
  fold(overflow_);
}

}  // namespace mscm::runtime
