#include "runtime/runtime_stats.h"

#include <cmath>
#include <functional>
#include <thread>

#include "common/str_util.h"

namespace mscm::runtime {

namespace {

// Index of the power-of-two bucket holding `ns`.
int BucketOf(int64_t ns) {
  if (ns <= 1) return 0;
  const int bit = 63 - __builtin_clzll(static_cast<uint64_t>(ns));
  return bit >= LatencyHistogram::kNumBuckets
             ? LatencyHistogram::kNumBuckets - 1
             : bit;
}

double BucketMidSeconds(int bucket) {
  // Geometric midpoint of [2^b, 2^(b+1)) ns.
  return std::ldexp(1.0, bucket) * std::sqrt(2.0) * 1e-9;
}

}  // namespace

void LatencyHistogram::Record(std::chrono::nanoseconds latency) {
  RecordN(latency, 1);
}

void LatencyHistogram::RecordN(std::chrono::nanoseconds latency, uint64_t n) {
  if (n == 0) return;
  const int bucket = BucketOf(latency.count());
  buckets_[bucket].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  total_ns_.fetch_add(
      n * static_cast<uint64_t>(std::max<int64_t>(0, latency.count())),
      std::memory_order_relaxed);
}

double LatencyHistogram::PercentileSeconds(double p) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  const double clamped = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  const uint64_t rank = static_cast<uint64_t>(clamped * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank) return BucketMidSeconds(b);
  }
  return BucketMidSeconds(kNumBuckets - 1);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.mean_seconds = 1e-9 *
                      static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
                      static_cast<double>(snap.count);
  snap.p50_seconds = PercentileSeconds(0.50);
  snap.p90_seconds = PercentileSeconds(0.90);
  snap.p99_seconds = PercentileSeconds(0.99);
  for (int b = kNumBuckets - 1; b >= 0; --b) {
    if (buckets_[b].load(std::memory_order_relaxed) > 0) {
      snap.max_bucket_seconds = std::ldexp(1.0, b + 1) * 1e-9;
      break;
    }
  }
  return snap;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

std::string LatencyHistogram::Snapshot::ToString() const {
  return Format("n=%llu mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus",
                static_cast<unsigned long long>(count), mean_seconds * 1e6,
                p50_seconds * 1e6, p90_seconds * 1e6, p99_seconds * 1e6);
}

std::string RuntimeStatsSnapshot::ToString() const {
  std::string out = Format(
      "requests=%llu batches=%llu probe_cache{hit=%llu stale=%llu miss=%llu} "
      "estimate_cache{hit=%llu miss=%llu invalidated=%llu} "
      "no_model=%llu invalid_requests=%llu probes=%llu probe_interval=%.3gms "
      "probe_failures=%llu probe_discards=%llu probe_timeouts=%llu "
      "probes_suppressed=%llu breaker_opens=%llu degraded_sites=%llu "
      "degraded_served=%llu "
      "catalog_swaps=%llu stale_models=%llu stale_model_served=%llu\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(probe_cache_hits),
      static_cast<unsigned long long>(probe_cache_stale),
      static_cast<unsigned long long>(probe_cache_misses),
      static_cast<unsigned long long>(estimate_cache_hits),
      static_cast<unsigned long long>(estimate_cache_misses),
      static_cast<unsigned long long>(estimate_cache_invalidations),
      static_cast<unsigned long long>(no_model),
      static_cast<unsigned long long>(invalid_requests),
      static_cast<unsigned long long>(probes),
      static_cast<double>(probe_interval_ns) * 1e-6,
      static_cast<unsigned long long>(probe_failures),
      static_cast<unsigned long long>(probe_discards),
      static_cast<unsigned long long>(probe_timeouts),
      static_cast<unsigned long long>(probes_suppressed),
      static_cast<unsigned long long>(breaker_opens),
      static_cast<unsigned long long>(degraded_sites),
      static_cast<unsigned long long>(degraded_served),
      static_cast<unsigned long long>(catalog_swaps),
      static_cast<unsigned long long>(stale_models),
      static_cast<unsigned long long>(stale_model_served));
  out += "estimate latency: " + estimate_latency.ToString() + "\n";
  out += "probe latency:    " + probe_latency.ToString();
  return out;
}

const std::vector<StatsCounterField>& StatsCounterFields() {
  using S = RuntimeStatsSnapshot;
  static const std::vector<StatsCounterField>* fields =
      new std::vector<StatsCounterField>{
          {"requests", &S::requests},
          {"batches", &S::batches},
          {"probe_cache_hits", &S::probe_cache_hits},
          {"probe_cache_stale", &S::probe_cache_stale},
          {"probe_cache_misses", &S::probe_cache_misses},
          {"no_model", &S::no_model},
          {"probes", &S::probes},
          {"probe_failures", &S::probe_failures},
          {"probe_discards", &S::probe_discards},
          {"probe_timeouts", &S::probe_timeouts},
          {"probes_suppressed", &S::probes_suppressed},
          {"breaker_opens", &S::breaker_opens},
          {"degraded_sites", &S::degraded_sites},
          {"degraded_served", &S::degraded_served},
          {"invalid_requests", &S::invalid_requests},
          {"catalog_swaps", &S::catalog_swaps},
          {"stale_model_served", &S::stale_model_served},
          {"stale_models", &S::stale_models},
          {"estimate_cache_hits", &S::estimate_cache_hits},
          {"estimate_cache_misses", &S::estimate_cache_misses},
          {"estimate_cache_invalidations", &S::estimate_cache_invalidations},
      };
  return *fields;
}

const std::vector<StatsGaugeField>& StatsGaugeFields() {
  using S = RuntimeStatsSnapshot;
  static const std::vector<StatsGaugeField>* fields =
      new std::vector<StatsGaugeField>{
          {"probe_interval_ns", &S::probe_interval_ns},
      };
  return *fields;
}

const std::vector<StatsHistogramField>& StatsHistogramFields() {
  using S = RuntimeStatsSnapshot;
  static const std::vector<StatsHistogramField>* fields =
      new std::vector<StatsHistogramField>{
          {"estimate_latency", &S::estimate_latency},
          {"probe_latency", &S::probe_latency},
      };
  return *fields;
}

RuntimeCounters::Shard& RuntimeCounters::Local() {
  const size_t hash = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[hash % kShards];
}

void RuntimeCounters::AggregateInto(RuntimeStatsSnapshot& out) const {
  for (const Shard& s : shards_) {
    const uint64_t cache_hits =
        s.estimate_cache_hits.load(std::memory_order_relaxed);
    // The estimate-cache hit path bumps exactly one counter; a hit is still
    // a served request, so fold it back in here.
    out.estimate_cache_hits += cache_hits;
    out.requests += cache_hits;
    out.estimate_cache_misses +=
        s.estimate_cache_misses.load(std::memory_order_relaxed);
    out.requests += s.requests.load(std::memory_order_relaxed);
    out.batches += s.batches.load(std::memory_order_relaxed);
    out.probe_cache_hits += s.probe_cache_hits.load(std::memory_order_relaxed);
    out.probe_cache_stale += s.probe_cache_stale.load(std::memory_order_relaxed);
    out.probe_cache_misses += s.probe_cache_misses.load(std::memory_order_relaxed);
    out.no_model += s.no_model.load(std::memory_order_relaxed);
    out.probes += s.probes.load(std::memory_order_relaxed);
    out.probe_failures += s.probe_failures.load(std::memory_order_relaxed);
    out.catalog_swaps += s.catalog_swaps.load(std::memory_order_relaxed);
    out.stale_model_served +=
        s.stale_model_served.load(std::memory_order_relaxed);
    out.degraded_served += s.degraded_served.load(std::memory_order_relaxed);
    out.invalid_requests +=
        s.invalid_requests.load(std::memory_order_relaxed);
  }
}

}  // namespace mscm::runtime
