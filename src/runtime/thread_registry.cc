#include "runtime/thread_registry.h"

#include <mutex>

namespace mscm::runtime {
namespace {

// Leaked on purpose: thread_local destructors of detached or late-exiting
// threads may release slots after static destruction has begun, so the
// registry state must outlive every thread.
struct Registry {
  std::mutex mutex;
  bool used[ThreadRegistry::kMaxSlots] = {};
  int live = 0;
  // Rotating scan start so freshly released slots are not immediately
  // recycled while an aggregator may still be folding the old owner's
  // stripe (harmless either way — stripes are cumulative — but this keeps
  // slot assignment roughly round-robin and cache-friendly).
  int next = 0;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

int AcquireSlot() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (int probe = 0; probe < ThreadRegistry::kMaxSlots; ++probe) {
    const int slot = (r.next + probe) % ThreadRegistry::kMaxSlots;
    if (!r.used[slot]) {
      r.used[slot] = true;
      r.next = (slot + 1) % ThreadRegistry::kMaxSlots;
      ++r.live;
      return slot;
    }
  }
  return -1;
}

void ReleaseSlot(int slot) {
  if (slot < 0) return;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.used[slot] = false;
  --r.live;
}

// Assigned on the thread's first CurrentSlot() call, released when the
// thread exits. The registry mutex orders a released slot's last writes
// before the next owner's first: release in ~SlotHolder, acquire in
// AcquireSlot.
struct SlotHolder {
  int slot;
  SlotHolder() : slot(AcquireSlot()) {}
  ~SlotHolder() { ReleaseSlot(slot); }
};

}  // namespace

int ThreadRegistry::CurrentSlot() {
  static thread_local SlotHolder holder;
  return holder.slot;
}

int ThreadRegistry::LiveSlots() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.live;
}

}  // namespace mscm::runtime
