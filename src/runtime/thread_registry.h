// Process-wide registry of small dense thread slots, the backbone of every
// per-thread hot-path structure in src/runtime (RuntimeCounters stripes,
// LatencyHistogram stripes, EstimateCache shards, EpochDomain reader slots).
//
// Each live thread owns at most one slot in [0, kMaxSlots). Slots are unique
// among live threads, stable for the thread's lifetime, and returned to a
// free pool when the thread exits — so a structure indexed by slot is
// single-writer while the owning thread lives, and a successor thread that
// reuses the slot is ordered after the previous owner by the registry mutex
// (release on exit, acquire on assignment). Cumulative structures (counters,
// histograms) therefore never reset a slot on release: the successor simply
// keeps adding and aggregation stays conserved across thread churn.
//
// When more than kMaxSlots threads are alive at once, the excess threads get
// slot -1 and every per-thread structure falls back to a shared overflow
// path (real atomic RMWs, counted by RmwProbe).

#ifndef MSCM_RUNTIME_THREAD_REGISTRY_H_
#define MSCM_RUNTIME_THREAD_REGISTRY_H_

namespace mscm::runtime {

class ThreadRegistry {
 public:
  static constexpr int kMaxSlots = 256;

  // The calling thread's slot: assigned on first call, unique among live
  // threads, released at thread exit. -1 when more than kMaxSlots threads
  // are alive (callers must fall back to their shared overflow path).
  static int CurrentSlot();

  // Slots currently assigned (diagnostics / tests).
  static int LiveSlots();
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_THREAD_REGISTRY_H_
