// State-keyed memo of estimate responses (paper §3.1 made operational): a
// cost estimate is a pure function of (model, features, contention state) —
// the probing cost enters the regression only through the qualitative
// variable, i.e. through StateOf(probing_cost). So a response stays exactly
// correct for as long as (a) the catalog that priced it is still the
// published one and (b) the site's probing cost still maps to the same state
// under that model. The cache keys on (site, class, quantized features,
// catalog epoch) and validates (b) per hit with two lock-free loads from the
// site's ContentionTracker: the state version, and the published probing
// cost checked against the state's own partition interval. No clock reads,
// no snapshot acquisition, no model walk on a hit.
//
// Invalidation:
//   - catalog swaps: every entry carries the catalog revision that priced it
//     and the lookup passes the current one — an epoch bump misses wholesale.
//     RegisterModel additionally evicts the site's entries eagerly.
//   - state transitions: the tracker bumps its state version on a state flip
//     or staleness crossing (entries self-invalidate), and the service wires
//     a state-change callback that evicts the site's entries eagerly.
// Entries hold a shared_ptr to their tracker, so validation atomics stay
// dereferenceable even after RegisterSite replaces the site's tracker.

#ifndef MSCM_RUNTIME_ESTIMATE_CACHE_H_
#define MSCM_RUNTIME_ESTIMATE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/contention_tracker.h"
#include "runtime/estimate_types.h"

namespace mscm::runtime {

struct EstimateCacheConfig {
  // Total cached responses across all shards; 0 disables the cache (every
  // lookup misses, inserts are dropped).
  size_t capacity = 0;
  // Independent spinlocked shards (rounded up to a power of two); concurrent
  // estimate threads for different keys rarely contend.
  size_t shards = 8;
  // Feature quantization grid. 0 keys features on their exact bit patterns
  // (a hit requires identical features — always exact). Positive values key
  // on round(feature / quantum), trading a bounded feature perturbation for
  // hits across near-identical feature vectors.
  double feature_quantum = 0.0;
};

class EstimateCache {
 public:
  explicit EstimateCache(const EstimateCacheConfig& config);
  ~EstimateCache();

  EstimateCache(const EstimateCache&) = delete;
  EstimateCache& operator=(const EstimateCache&) = delete;

  bool enabled() const { return !shards_.empty(); }

  // Everything Insert needs beyond the key and the response to make the
  // entry self-validating on later lookups.
  struct InsertContext {
    // Keeps the tracker's validation atomics alive for the entry's lifetime.
    std::shared_ptr<ContentionTracker> tracker;
    // Tracker state version loaded *before* the reading that produced the
    // response was taken — if anything moved in between, the entry is born
    // invalid rather than wrongly valid.
    uint64_t state_version = 0;
    // The response state's partition interval (lo, hi] under the model that
    // priced it (±infinity at the ends). The entry stays value-correct while
    // the published probing cost lies inside it.
    double state_lo = 0.0;
    double state_hi = 0.0;
  };

  // Fills `response` and returns true when a currently valid entry matches.
  // Invalid entries encountered are evicted in passing.
  bool Lookup(const std::string& site, int class_id,
              const std::vector<double>& features, uint64_t epoch,
              EstimateResponse* response);

  // Stores a response; overwrites the oldest colliding slot when full.
  void Insert(const std::string& site, int class_id,
              const std::vector<double>& features, uint64_t epoch,
              const InsertContext& context, const EstimateResponse& response);

  // Evicts every entry for `site` / every entry. Returns entries evicted.
  size_t InvalidateSite(const std::string& site);
  size_t InvalidateAll();

  // Entries evicted by InvalidateSite/InvalidateAll plus entries found
  // invalid during lookups (the estimate_cache_invalidations counter).
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    bool occupied = false;
    int class_id = 0;
    uint64_t hash = 0;
    uint64_t epoch = 0;
    uint64_t state_version = 0;
    double state_lo = 0.0;
    double state_hi = 0.0;
    std::string site;
    std::vector<uint64_t> feature_bits;
    std::shared_ptr<ContentionTracker> tracker;
    EstimateResponse response;
  };

  struct alignas(64) Shard {
    std::atomic_flag lock;  // clear on construction (C++20)
    std::vector<Slot> slots;
  };

  Shard& ShardFor(uint64_t hash) {
    // Shard on high bits, slot on low bits — independent indices.
    return shards_[(hash >> 48) & (shards_.size() - 1)];
  }

  uint64_t slot_mask_ = 0;  // slots per shard - 1 (power of two)
  double feature_quantum_ = 0.0;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_ESTIMATE_CACHE_H_
