// State-keyed memo of estimate responses (paper §3.1 made operational): a
// cost estimate is a pure function of (model, features, contention state) —
// the probing cost enters the regression only through the qualitative
// variable, i.e. through StateOf(probing_cost). So a response stays exactly
// correct for as long as (a) the catalog that priced it is still the
// published one and (b) the site's probing cost still maps to the same state
// under that model. The cache keys on (site, class, quantized features,
// catalog epoch) and validates (b) per hit with two lock-free loads from the
// site's ContentionTracker: the state version, and the published probing
// cost checked against the state's own partition interval. No clock reads,
// no snapshot acquisition, no model walk on a hit.
//
// Concurrency: the table is sharded per thread — each live thread
// (ThreadRegistry slot) owns a private slot array that only it reads or
// writes, so lookups and inserts take no lock and perform zero shared
// atomic RMWs. Threads warm their own working sets (an entry inserted by
// one thread is not visible to another), which is the right trade for a
// serving stack where each worker sees the full key distribution.
// Threads beyond the registry capacity bypass the cache entirely.
//
// Invalidation is lazy, via per-site version cells: every entry records the
// value of its site's cell at insert time, and InvalidateSite/InvalidateAll
// bump cells (never touching another thread's shard). An entry whose cell,
// catalog epoch, or tracker validity probe mismatches is retired by its
// owning thread on the next lookup that meets it. Entries hold a shared_ptr
// to their tracker, so validation atomics stay dereferenceable even after
// RegisterSite replaces the site's tracker (the service stops a replaced
// tracker's prober eagerly; the pinned carcass is cheap).

#ifndef MSCM_RUNTIME_ESTIMATE_CACHE_H_
#define MSCM_RUNTIME_ESTIMATE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/contention_tracker.h"
#include "runtime/estimate_types.h"
#include "runtime/thread_registry.h"

namespace mscm::runtime {

struct EstimateCacheConfig {
  // Cached responses *per estimate thread* (rounded up to a power of two);
  // 0 disables the cache (every lookup misses, inserts are dropped). Total
  // footprint is live-estimate-threads × this, since each thread owns a
  // private shard. Deliberately NOT named `capacity`: that knob meant
  // *total* responses under the old spinlocked-shard design, and a silent
  // reinterpretation would have multiplied existing configs' memory by the
  // thread count — renaming makes stale configs fail to compile instead.
  size_t capacity_per_thread = 0;
  // Historical knob from the spinlocked-shard design; ignored (the cache is
  // now sharded per thread). Kept so existing configs keep compiling.
  size_t shards = 8;
  // Feature quantization grid. 0 keys features on their exact bit patterns
  // (a hit requires identical features — always exact). Positive values key
  // on round(feature / quantum), trading a bounded feature perturbation for
  // hits across near-identical feature vectors.
  double feature_quantum = 0.0;
};

class EstimateCache {
 public:
  explicit EstimateCache(const EstimateCacheConfig& config);
  ~EstimateCache();

  EstimateCache(const EstimateCache&) = delete;
  EstimateCache& operator=(const EstimateCache&) = delete;

  bool enabled() const { return slots_per_thread_ > 0; }

  // Everything Insert needs beyond the key and the response to make the
  // entry self-validating on later lookups.
  struct InsertContext {
    // Keeps the tracker's validation atomics alive for the entry's lifetime.
    std::shared_ptr<ContentionTracker> tracker;
    // Tracker state version loaded *before* the reading that produced the
    // response was taken — if anything moved in between, the entry is born
    // invalid rather than wrongly valid.
    uint64_t state_version = 0;
    // The response state's partition interval (lo, hi] under the model that
    // priced it (±infinity at the ends). The entry stays value-correct while
    // the published probing cost lies inside it.
    double state_lo = 0.0;
    double state_hi = 0.0;
  };

  // Fills `response` and returns true when a currently valid entry matches.
  // Invalid entries encountered are retired in passing. Touches only the
  // calling thread's shard: zero locks, zero shared atomic RMWs.
  bool Lookup(const std::string& site, int class_id,
              const std::vector<double>& features, uint64_t epoch,
              EstimateResponse* response);

  // Stores a response in the calling thread's shard; overwrites the oldest
  // colliding slot when full.
  void Insert(const std::string& site, int class_id,
              const std::vector<double>& features, uint64_t epoch,
              const InsertContext& context, const EstimateResponse& response);

  // Marks every entry for `site` / every entry invalid by bumping version
  // cells; each owning thread retires its dead entries on its next lookups.
  void InvalidateSite(const std::string& site);
  void InvalidateAll();

  // Marks only the entries priced in `state` for `site` invalid — the
  // adaptation swap path, where one state's coefficient row changed and
  // every other state's row is bit-identical (entries for those states stay
  // value-correct and survive).
  void InvalidateSiteState(const std::string& site, int state);

  // Entries retired after being invalidated (by a version-cell bump, a
  // catalog epoch they can no longer match, or a failed tracker validity
  // probe). Counted when the owning thread retires the entry, so this
  // trails InvalidateSite/InvalidateAll until lookups touch the dead slots.
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  using VersionCell = std::atomic<uint64_t>;

  struct Slot {
    bool occupied = false;
    int class_id = 0;
    uint64_t hash = 0;
    uint64_t epoch = 0;
    uint64_t state_version = 0;
    double state_lo = 0.0;
    double state_hi = 0.0;
    // The site's invalidation cell and its value when this entry was
    // inserted; a bumped cell invalidates the entry lazily.
    const VersionCell* site_cell = nullptr;
    uint64_t site_version = 0;
    // Finer-grained twin keyed by (site, response state): bumped by
    // InvalidateSiteState when an adaptation swap changes that state's row.
    const VersionCell* state_cell = nullptr;
    uint64_t state_cell_version = 0;
    std::string site;
    std::vector<uint64_t> feature_bits;
    std::shared_ptr<ContentionTracker> tracker;
    EstimateResponse response;
  };

  // One thread's private table plus its memo of site → version cell (the
  // memo avoids the cells_mutex_ on repeat inserts for the same site).
  struct ThreadShard {
    std::vector<Slot> slots;
    std::unordered_map<std::string, const VersionCell*> cell_memo;
    std::map<std::pair<std::string, int>, const VersionCell*> state_cell_memo;
  };

  // The calling thread's shard, lazily created (nullptr when `create` is
  // false and none exists yet, or the thread has no registry slot).
  ThreadShard* LocalShard(bool create);

  // The site's version cell (stable address), creating it if needed.
  const VersionCell* CellFor(const std::string& site, ThreadShard& shard);

  // The (site, state) version cell (stable address), creating it if needed.
  const VersionCell* StateCellFor(const std::string& site, int state,
                                  ThreadShard& shard);

  size_t slots_per_thread_ = 0;
  uint64_t slot_mask_ = 0;
  double feature_quantum_ = 0.0;
  // Owner-created (release store), freed only by the destructor.
  std::atomic<ThreadShard*> shards_[ThreadRegistry::kMaxSlots] = {};
  mutable std::mutex cells_mutex_;
  // node-stable: cell addresses survive rehash/insert.
  std::map<std::string, std::unique_ptr<VersionCell>> site_cells_;
  std::map<std::pair<std::string, int>, std::unique_ptr<VersionCell>>
      site_state_cells_;
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace mscm::runtime

#endif  // MSCM_RUNTIME_ESTIMATE_CACHE_H_
